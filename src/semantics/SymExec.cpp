#include "semantics/SymExec.h"

#include "support/Format.h"
#include "vsa/ValueSet.h"

#include <algorithm>
#include <atomic>

namespace hglift::sem {

using expr::LinearForm;
using expr::Opcode;
using expr::VarClass;
using mem::InsertResult;
using mem::MemModel;
using pred::MemCell;
using pred::Pred;
using pred::RelOp;
using smt::AllocClass;
using smt::Region;
using x86::Cond;
using x86::Instr;
using x86::MemOperand;
using x86::Mnemonic;
using x86::Operand;
using x86::Reg;

bool SymExec::isTerminatingExternal(const std::string &Name) {
  return Name == "exit" || Name == "_exit" || Name == "_Exit" ||
         Name == "abort" || Name == "exit_group" ||
         Name == "__stack_chk_fail" || Name == "__assert_fail" ||
         Name == "err" || Name == "errx";
}

bool SymExec::isConcurrencyExternal(const std::string &Name) {
  return Name.rfind("pthread_", 0) == 0 || Name == "thrd_create" ||
         Name == "clone";
}

const Expr *SymExec::memAddrExpr(const SymState &S, const Instr &I,
                                 const MemOperand &M) {
  int64_t Disp = static_cast<int64_t>(M.Disp);
  if (M.RipRel)
    return Ctx.mkConst(I.nextAddr() + static_cast<uint64_t>(Disp), 64);
  const Expr *A = nullptr;
  if (M.Base != Reg::None)
    A = S.P.reg64(M.Base);
  if (M.Index != Reg::None) {
    const Expr *Idx = S.P.reg64(M.Index);
    if (M.Scale != 1)
      Idx = Ctx.mkBin(Opcode::Mul, Idx, Ctx.mkConst(M.Scale, 64));
    A = A ? Ctx.mkAdd(A, Idx) : Idx;
  }
  if (!A)
    return Ctx.mkConst(static_cast<uint64_t>(Disp), 64);
  return Disp ? Ctx.mkAddK(A, Disp) : A;
}

std::vector<SymExec::ReadRes> SymExec::readMem(const SymState &S,
                                               const Expr *Addr,
                                               unsigned Size, StepOut &Out) {
  Region R{Addr, Size};
  std::vector<ReadRes> Results;
  for (InsertResult &IR :
       S.M.insert(R, S.P, Solver, Cfg.Policy, Ctx)) {
    SymState NS{S.P, std::move(IR.Model)};
    for (const Region &D : IR.Destroyed)
      NS.P.removeCell(D.Addr, D.Size);
    for (std::string &A : IR.Assumptions)
      Out.Obligations.push_back(std::move(A));

    // Value resolution, in decreasing precision. Read-only memory is
    // immutable for the binary's whole execution (writes to it fault), so
    // its content stands even after external calls havoc the mutable
    // globals — and such values are recomputable, so no memory clause is
    // registered for them (keeping the §4 control-hash stable across
    // paths that skip the read).
    const Expr *Val = nullptr;
    bool Recomputable = false;
    std::vector<Region> Aliases, Ancestors, Descendants;
    NS.M.locate(R, Aliases, Ancestors, Descendants);

    if (Addr->isConst() && Img.isReadOnly(Addr->constVal(), Size)) {
      if (auto V = Img.read(Addr->constVal(), Size)) {
        Val = Ctx.mkConst(*V, Size >= 8 ? 64 : Size * 8);
        Recomputable = true;
      }
    }
    if (!Val)
      if (const MemCell *C = NS.P.findCell(Addr, Size))
        Val = C->Val;
    if (!Val)
      for (const Region &A : Aliases)
        if (const MemCell *C = NS.P.findCell(A.Addr, A.Size)) {
          Val = C->Val;
          break;
        }
    if (!Val) {
      // A symbolic address whose whole range provably lies in a read-only
      // segment (a bounded jump-table access): initial content, stable.
      Interval IA = NS.P.intervalOf(Addr);
      if (!IA.isTop() && !IA.isEmpty() && IA.lo() >= 0 &&
          Img.isReadOnly(static_cast<uint64_t>(IA.lo()),
                         static_cast<uint64_t>(IA.hi() - IA.lo()) + Size)) {
        Val = Ctx.mkDeref(Addr, Size);
        Recomputable = true;
      }
    }
    if (!Val && NS.M.provablyUntouched(R, NS.P, Solver, Ctx))
      Val = Ctx.mkDeref(Addr, Size);
    if (!Val)
      Val = Ctx.mkFresh("mem", Size >= 8 ? 64 : Size * 8);
    if (!Recomputable)
      NS.P.setCell(Addr, Size, Val);
    Results.push_back(ReadRes{std::move(NS), Val});
  }
  return Results;
}

std::vector<SymState> SymExec::writeMem(const SymState &S, const Expr *Addr,
                                        unsigned Size, const Expr *Val,
                                        StepOut &Out) {
  Region R{Addr, Size};
  std::vector<SymState> Results;
  for (InsertResult &IR :
       S.M.insert(R, S.P, Solver, Cfg.Policy, Ctx)) {
    SymState NS{S.P, std::move(IR.Model)};
    for (const Region &D : IR.Destroyed)
      NS.P.removeCell(D.Addr, D.Size);
    for (std::string &A : IR.Assumptions)
      Out.Obligations.push_back(std::move(A));

    // Invalidate every clause the write may touch: aliases get the new
    // value implicitly through R's clause; enclosing and enclosed regions
    // become partially stale.
    std::vector<Region> Aliases, Ancestors, Descendants;
    NS.M.locate(R, Aliases, Ancestors, Descendants);
    for (const Region &A : Aliases)
      NS.P.removeCell(A.Addr, A.Size);
    for (const Region &A : Ancestors)
      NS.P.removeCell(A.Addr, A.Size);
    for (const Region &A : Descendants)
      NS.P.removeCell(A.Addr, A.Size);

    NS.P.setCell(Addr, Size, Val);
    NS.M.noteWrite(R);
    Results.push_back(std::move(NS));
  }
  return Results;
}

// --- branch clause derivation -------------------------------------------------

namespace {

/// Map a condition code to (RelOp over L, bound) when R is the constant
/// side. Mirrored = the constant was on the left of the cmp.
bool ccToRel(Cond CC, bool Mirrored, RelOp &Op) {
  switch (CC) {
  case Cond::E:
    Op = RelOp::Eq;
    return true;
  case Cond::NE:
    Op = RelOp::Ne;
    return true;
  case Cond::B:
    Op = Mirrored ? RelOp::UGt : RelOp::ULt;
    return true;
  case Cond::AE:
    Op = Mirrored ? RelOp::ULe : RelOp::UGe;
    return true;
  case Cond::BE:
    Op = Mirrored ? RelOp::UGe : RelOp::ULe;
    return true;
  case Cond::A:
    Op = Mirrored ? RelOp::ULt : RelOp::UGt;
    return true;
  case Cond::L:
    Op = Mirrored ? RelOp::SGt : RelOp::SLt;
    return true;
  case Cond::GE:
    Op = Mirrored ? RelOp::SLe : RelOp::SGe;
    return true;
  case Cond::LE:
    Op = Mirrored ? RelOp::SGe : RelOp::SLe;
    return true;
  case Cond::G:
    Op = Mirrored ? RelOp::SLt : RelOp::SGt;
    return true;
  default:
    return false;
  }
}

} // namespace

bool SymExec::addBranchClause(Pred &P, Cond CC, bool Taken) {
  const pred::FlagState &F = P.flags();
  if (!Taken)
    CC = x86::negateCond(CC);

  const Expr *E = nullptr;
  uint64_t Bound = 0;
  RelOp Op;

  if (F.K == pred::FlagState::Kind::Cmp) {
    bool Mirrored;
    if (F.R && F.R->isConst()) {
      E = F.L;
      Bound = F.R->constVal();
      Mirrored = false;
    } else if (F.L && F.L->isConst()) {
      E = F.R;
      Bound = F.L->constVal();
      Mirrored = true;
    } else {
      return true; // no refinement possible
    }
    if (!ccToRel(CC, Mirrored, Op))
      return true;
  } else if (F.K == pred::FlagState::Kind::Test && F.L == F.R && F.L) {
    // test x, x: flags of x vs 0.
    E = F.L;
    Bound = 0;
    switch (CC) {
    case Cond::E:
    case Cond::BE:
      Op = RelOp::Eq;
      break;
    case Cond::NE:
    case Cond::A:
      Op = RelOp::Ne;
      break;
    case Cond::S:
    case Cond::L:
      Op = RelOp::SLt;
      break;
    case Cond::NS:
    case Cond::GE:
      Op = RelOp::SGe;
      break;
    case Cond::LE:
      Op = RelOp::SLe;
      break;
    case Cond::G:
      Op = RelOp::SGt;
      break;
    case Cond::B:
      return false; // CF = 0 after test: branch unreachable
    case Cond::AE:
      return true; // always true: no clause
    default:
      return true;
    }
  } else if (F.K == pred::FlagState::Kind::ZeroOf && F.L) {
    E = F.L;
    Bound = 0;
    switch (CC) {
    case Cond::E:
      Op = RelOp::Eq;
      break;
    case Cond::NE:
      Op = RelOp::Ne;
      break;
    default:
      return true;
    }
  } else if (F.K == pred::FlagState::Kind::Res && F.L) {
    E = F.L;
    Bound = 0;
    switch (CC) {
    case Cond::E:
      Op = RelOp::Eq;
      break;
    case Cond::NE:
      Op = RelOp::Ne;
      break;
    case Cond::S:
      Op = RelOp::SLt;
      break;
    case Cond::NS:
      Op = RelOp::SGe;
      break;
    default:
      return true;
    }
  } else {
    return true;
  }

  if (E->isConst()) {
    // Decidable immediately.
    uint64_t V = E->constVal();
    int64_t SV = expr::signExtend(V, E->width());
    int64_t SBn = static_cast<int64_t>(Bound);
    switch (Op) {
    case RelOp::Eq:
      return V == Bound;
    case RelOp::Ne:
      return V != Bound;
    case RelOp::ULt:
      return V < Bound;
    case RelOp::ULe:
      return V <= Bound;
    case RelOp::UGe:
      return V >= Bound;
    case RelOp::UGt:
      return V > Bound;
    case RelOp::SLt:
      return SV < SBn;
    case RelOp::SLe:
      return SV <= SBn;
    case RelOp::SGe:
      return SV >= SBn;
    case RelOp::SGt:
      return SV > SBn;
    }
  }

  P.addRange(E, Op, Bound);
  // Contradiction check: an empty interval means this branch direction is
  // unreachable from the current state.
  Interval IV = P.intervalOf(E);
  if (IV.isEmpty())
    return false;
  if (Op == RelOp::Eq && !IV.contains(static_cast<int64_t>(Bound)) &&
      !IV.isTop())
    return false;
  return true;
}

// --- rip resolution -------------------------------------------------------------

SymExec::RipRes SymExec::resolveRip(const Expr *Val, const Pred &P) {
  RipRes R;
  if (Val->isConst()) {
    R.K = RipRes::Kind::Imm;
    R.Addr = Val->constVal();
    return R;
  }
  if (Val->isVar()) {
    VarClass C = Ctx.varInfo(Val->varId()).Cls;
    if (C == VarClass::RetSym || C == VarClass::RetAddr) {
      R.K = RipRes::Kind::RetSym;
      return R;
    }
  }

  // Jump-table patterns (absolute and, with Cfg.Vsa, offset tables and
  // interval-derived bounds): delegated to the value-set analysis, which
  // is a pure function of (invariant, image) so Step-1 and Step-2 agree.
  vsa::VsaConfig VC;
  VC.Extended = Cfg.Vsa;
  VC.MaxTargets = Cfg.VsaMaxTargets;
  VC.MaxJumpTableEntries = Cfg.MaxJumpTableEntries;
  // The vsa_* counters attribute the analysis, not the legacy resolver it
  // subsumes: under --no-vsa they must read zero (docs/CLI.md).
  if (Stats && Cfg.Vsa)
    ++Stats->VsaQueries;
  vsa::Resolution VR = vsa::resolveValueSet(Img, P, Val, VC);
  if (VR.resolved()) {
    R.K = RipRes::Kind::Table;
    R.Targets = std::move(VR.Targets);
    R.TableAddr = VR.TableAddr;
    R.UsedExtended = VR.UsedExtended;
    if (Stats && Cfg.Vsa) {
      ++Stats->VsaResolved;
      Stats->VsaTargets += R.Targets.size();
    }
    return R;
  }

  R.K = RipRes::Kind::Unresolved;
  R.UnboundedIndex = VR.Index;
  return R;
}

// --- call-state cleaning ----------------------------------------------------------

void SymExec::cleanForCall(SymState &S, const std::string &CalleeName,
                           uint64_t CallAddr, StepOut &Out) {
  // MUST-PRESERVE obligations for stack-frame pointers escaping into the
  // callee (the §5.3 ret2win shape).
  for (unsigned AI = 0; AI < 6; ++AI) {
    Reg AR = x86::argReg(AI);
    const Expr *V = S.P.reg64(AR);
    if (smt::classifyAddr(V, Ctx) == AllocClass::StackFrame) {
      Out.Obligations.push_back(
          "@" + hexStr(CallAddr) + " : " + CalleeName + "(" +
          x86::regName(AR) + " := " + V->str(Ctx) +
          ") MUST PRESERVE [rsp0, 8]");
    }
  }

  // Havoc the System V volatile registers; rax becomes the callee's result
  // (an External variable, so malloc-style results classify as heap).
  S.P.writeReg(Ctx, Reg::RAX, 8, false,
               Ctx.mkFresh("ret_" + CalleeName));
  const Expr *RaxVal = S.P.reg64(Reg::RAX);
  // Reclassify as External: mkFresh produces VarClass::Fresh; build a
  // dedicated External variable instead.
  {
    static_cast<void>(RaxVal);
    const Expr *Ext = Ctx.mkVar(VarClass::External,
                                "ret_" + CalleeName + "@" + hexStr(CallAddr),
                                64);
    S.P.setReg64(Reg::RAX, Ext);
  }
  for (Reg R : {Reg::RCX, Reg::RDX, Reg::RSI, Reg::RDI, Reg::R8, Reg::R9,
                Reg::R10, Reg::R11})
    S.P.setReg64(R, Ctx.mkFresh("clob_" + x86::regName(R)));
  S.P.clearFlags();

  // Keep only local-stack-frame memory clauses (§1: "the local stack frame
  // is kept intact ... the heap and the global space are destroyed").
  S.P.filterCells([&](const MemCell &C) {
    return smt::classifyAddr(C.Addr, Ctx) == AllocClass::StackFrame;
  });
  S.M.HavocGlobals = true;
}

// --- the step function ---------------------------------------------------------------

namespace {
std::atomic<StepMutator *> GStepMutator{nullptr};
} // namespace

StepMutator::~StepMutator() = default;

StepMutator *installStepMutator(StepMutator *M) {
  return GStepMutator.exchange(M, std::memory_order_relaxed);
}

StepMutator *installedStepMutator() {
  return GStepMutator.load(std::memory_order_relaxed);
}

StepOut SymExec::step(const SymState &S0, const Instr &I,
                      const Expr *EntryRetSym) {
  StepOut Out = stepImpl(S0, I, EntryRetSym);
  if (StepMutator *Mut = installedStepMutator())
    Mut->mutate(Out, S0, I, Ctx);
  if (Stats) {
    ++Stats->Steps;
    if (Out.Succs.size() > 1)
      Stats->Forks += Out.Succs.size() - 1;
  }

  // Structure the step's findings (cold: most steps produce neither). The
  // provenance snapshot — decoded mnemonic plus the solver's recent
  // relation-query chain — is taken here, while the queries that led to
  // the obligation/rejection are still the newest in the ring.
  if (!Out.Obligations.empty() || Out.VerifError) {
    diag::Provenance Prov;
    Prov.Origin = diag::Component::SymExec;
    Prov.Addr = I.Addr;
    Prov.Mnemonic = I.str();
    Prov.QueryChain = Solver.recentQueries();
    Prov.Worker = diag::workerOrdinal();
    for (const std::string &O : Out.Obligations)
      Out.Diags.push_back(
          diag::Diagnostic{diag::DiagKind::ProofObligation, O, Prov});
    if (Out.VerifError)
      Out.Diags.push_back(diag::Diagnostic{diag::DiagKind::VerificationError,
                                           Out.VerifReason, Prov});
  }
  return Out;
}

StepOut SymExec::stepImpl(const SymState &S0, const Instr &I,
                          const Expr *EntryRetSym) {
  StepOut Out;
  uint64_t Next = I.nextAddr();

  auto fail = [&](const std::string &Why) {
    Out.VerifError = true;
    Out.VerifReason = Why + " at " + hexStr(I.Addr) + " (" + I.str() + ")";
    return Out;
  };

  // Generic operand plumbing. States fork on memory-model nondeterminism.
  auto pure = [&](const SymState &S, const Operand &O) -> const Expr * {
    if (O.isImm())
      return Ctx.mkConst(static_cast<uint64_t>(O.Imm), O.Size * 8);
    return S.P.readReg(Ctx, O.R, O.Size, O.HighByte);
  };
  auto readOp = [&](const SymState &S,
                    const Operand &O) -> std::vector<ReadRes> {
    if (!O.isMem())
      return {ReadRes{S, pure(S, O)}};
    return readMem(S, memAddrExpr(S, I, O.M), O.Size, Out);
  };
  auto writeOp = [&](const SymState &S, const Operand &O,
                     const Expr *VIn) -> std::vector<SymState> {
    // Bound expression growth: beyond the cap, substitute an unconstrained
    // value (sound weakening; mirrors the paper's implementation).
    const Expr *V = VIn->treeSize() > ExprContext::MaxTreeSize
                        ? Ctx.mkFresh("big", VIn->width())
                        : VIn;
    if (O.isReg()) {
      SymState NS = S;
      NS.P.writeReg(Ctx, O.R, O.Size, O.HighByte, V);
      return {NS};
    }
    return writeMem(S, memAddrExpr(S, I, O.M), O.Size, V, Out);
  };
  auto emitFall = [&](SymState S) {
    Out.Succs.push_back(Succ{std::move(S), CtrlKind::Fall, Next, nullptr});
  };

  unsigned W = I.Ops[0].isNone() ? I.OpSize * 8u : I.Ops[0].Size * 8u;

  switch (I.Mn) {
  case Mnemonic::Mov:
    for (ReadRes &R : readOp(S0, I.Ops[1]))
      for (SymState &NS : writeOp(R.S, I.Ops[0], R.Val))
        emitFall(std::move(NS));
    return Out;

  case Mnemonic::Movzx:
    for (ReadRes &R : readOp(S0, I.Ops[1]))
      for (SymState &NS : writeOp(
               R.S, I.Ops[0], Ctx.mkZExt(R.Val, I.Ops[0].Size * 8)))
        emitFall(std::move(NS));
    return Out;

  case Mnemonic::Movsx:
  case Mnemonic::Movsxd:
    for (ReadRes &R : readOp(S0, I.Ops[1]))
      for (SymState &NS : writeOp(
               R.S, I.Ops[0], Ctx.mkSExt(R.Val, I.Ops[0].Size * 8)))
        emitFall(std::move(NS));
    return Out;

  case Mnemonic::Lea: {
    const Expr *A = memAddrExpr(S0, I, I.Ops[1].M);
    if (I.Ops[0].Size != 8)
      A = Ctx.mkTrunc(A, I.Ops[0].Size * 8);
    for (SymState &NS : writeOp(S0, I.Ops[0], A))
      emitFall(std::move(NS));
    return Out;
  }

  case Mnemonic::Add:
  case Mnemonic::Sub:
  case Mnemonic::And:
  case Mnemonic::Or:
  case Mnemonic::Xor: {
    Opcode Op = I.Mn == Mnemonic::Add   ? Opcode::Add
                : I.Mn == Mnemonic::Sub ? Opcode::Sub
                : I.Mn == Mnemonic::And ? Opcode::And
                : I.Mn == Mnemonic::Or  ? Opcode::Or
                                        : Opcode::Xor;
    for (ReadRes &RD : readOp(S0, I.Ops[0]))
      for (ReadRes &RS : readOp(RD.S, I.Ops[1])) {
        const Expr *L = RD.Val, *R = RS.Val;
        const Expr *Res = Ctx.mkOp(Op, {L, R}, W);
        if (Res->treeSize() > ExprContext::MaxTreeSize)
          Res = Ctx.mkFresh("alu", W);
        for (SymState &NS : writeOp(RS.S, I.Ops[0], Res)) {
          if (I.Mn == Mnemonic::Sub)
            NS.P.setFlagsCmp(L, R, W);
          else if (I.Mn == Mnemonic::And)
            NS.P.setFlagsTest(L, R, W);
          else
            NS.P.setFlagsRes(Res, W);
          emitFall(std::move(NS));
        }
      }
    return Out;
  }

  case Mnemonic::Adc:
  case Mnemonic::Sbb:
    // Carry-dependent arithmetic: havoc the destination (sound).
    for (SymState &NS : writeOp(S0, I.Ops[0], Ctx.mkFresh("carry", W))) {
      NS.P.clearFlags();
      emitFall(std::move(NS));
    }
    return Out;

  case Mnemonic::Cmp:
    for (ReadRes &RD : readOp(S0, I.Ops[0]))
      for (ReadRes &RS : readOp(RD.S, I.Ops[1])) {
        SymState NS = RS.S;
        NS.P.setFlagsCmp(RD.Val, RS.Val, W);
        emitFall(std::move(NS));
      }
    return Out;

  case Mnemonic::Test:
    for (ReadRes &RD : readOp(S0, I.Ops[0]))
      for (ReadRes &RS : readOp(RD.S, I.Ops[1])) {
        SymState NS = RS.S;
        NS.P.setFlagsTest(RD.Val, RS.Val, W);
        emitFall(std::move(NS));
      }
    return Out;

  case Mnemonic::Shl:
  case Mnemonic::Shr:
  case Mnemonic::Sar: {
    Opcode Op = I.Mn == Mnemonic::Shl   ? Opcode::Shl
                : I.Mn == Mnemonic::Shr ? Opcode::LShr
                                        : Opcode::AShr;
    for (ReadRes &RD : readOp(S0, I.Ops[0])) {
      const Expr *Count = pure(RD.S, I.Ops[1]); // imm8 or cl
      if (Count->isConst() && (Count->constVal() & (W == 64 ? 63 : 31)) == 0) {
        emitFall(RD.S); // shift by zero: no state change, flags kept
        continue;
      }
      const Expr *CountW = Ctx.mkZExt(Count, W);
      const Expr *Res = Ctx.mkOp(Op, {RD.Val, CountW}, W);
      for (SymState &NS : writeOp(RD.S, I.Ops[0], Res)) {
        if (Count->isConst())
          NS.P.setFlagsRes(Res, W);
        else
          NS.P.clearFlags();
        emitFall(std::move(NS));
      }
    }
    return Out;
  }

  case Mnemonic::Rol:
  case Mnemonic::Ror:
    for (ReadRes &RD : readOp(S0, I.Ops[0])) {
      const Expr *Count = pure(RD.S, I.Ops[1]);
      const Expr *Res;
      if (Count->isConst()) {
        unsigned C = Count->constVal() & (W == 64 ? 63 : 31);
        if (C % W == 0) {
          emitFall(RD.S); // rotation by a multiple of the width: no-op
          continue;
        }
        unsigned L = I.Mn == Mnemonic::Rol ? C % W : W - (C % W);
        Res = Ctx.mkBin(
            Opcode::Or,
            Ctx.mkOp(Opcode::Shl, {RD.Val, Ctx.mkConst(L, W)}, W),
            Ctx.mkOp(Opcode::LShr, {RD.Val, Ctx.mkConst(W - L, W)}, W));
      } else {
        Res = Ctx.mkFresh("rot", W);
      }
      for (SymState &NS : writeOp(RD.S, I.Ops[0], Res)) {
        // Rotates modify only CF/OF, which the flag abstraction does not
        // track; drop what is tracked (sound weakening).
        NS.P.clearFlags();
        emitFall(std::move(NS));
      }
    }
    return Out;

  case Mnemonic::Bswap: {
    SymState Base = S0;
    const Expr *Old = Base.P.readReg(Ctx, I.Ops[0].R, I.Ops[0].Size);
    static_cast<void>(Old);
    // Byte-reversal as an expression would be eight extract/shift terms;
    // havoc is the paper-style sound treatment. bswap leaves flags alone.
    Base.P.writeReg(Ctx, I.Ops[0].R, I.Ops[0].Size, false,
                    Ctx.mkFresh("bswap", W));
    emitFall(std::move(Base));
    return Out;
  }

  case Mnemonic::Bsf:
  case Mnemonic::Bsr:
    for (ReadRes &RS : readOp(S0, I.Ops[1])) {
      SymState NS = RS.S;
      // Result: some bit index in [0, W); ZF = (src == 0). When the source
      // is zero the destination is left unchanged (architecturally
      // undefined), so the fresh value must stay unbounded: the [0, 63]
      // range is only sound when the source is provably nonzero. (Found
      // by the fuzzing campaign: a possibly-zero bsf source let a stale
      // bounded bit index suppress a signed branch's taken successor.)
      const Expr *Idx = Ctx.mkFresh("bitidx", W);
      NS.P.writeReg(Ctx, I.Ops[0].R, I.Ops[0].Size, false, Idx);
      Interval SrcI = NS.P.intervalOf(RS.Val);
      bool NonZero = (RS.Val->isConst() &&
                      expr::maskToWidth(RS.Val->constVal(), W) != 0) ||
                     (!SrcI.isTop() && !SrcI.isEmpty() &&
                      !SrcI.contains(0));
      if (NonZero)
        NS.P.addRange(NS.P.reg64(I.Ops[0].R), pred::RelOp::ULe, 63);
      NS.P.setFlagsZeroOf(RS.Val, W);
      emitFall(std::move(NS));
    }
    return Out;

  case Mnemonic::Inc:
  case Mnemonic::Dec:
    for (ReadRes &RD : readOp(S0, I.Ops[0])) {
      const Expr *One = Ctx.mkConst(1, W);
      const Expr *Res = Ctx.mkOp(
          I.Mn == Mnemonic::Inc ? Opcode::Add : Opcode::Sub, {RD.Val, One},
          W);
      for (SymState &NS : writeOp(RD.S, I.Ops[0], Res)) {
        NS.P.setFlagsRes(Res, W);
        emitFall(std::move(NS));
      }
    }
    return Out;

  case Mnemonic::Neg:
    for (ReadRes &RD : readOp(S0, I.Ops[0])) {
      const Expr *Res = Ctx.mkOp(Opcode::Neg, {RD.Val}, W);
      for (SymState &NS : writeOp(RD.S, I.Ops[0], Res)) {
        NS.P.setFlagsCmp(Ctx.mkConst(0, W), RD.Val, W);
        emitFall(std::move(NS));
      }
    }
    return Out;

  case Mnemonic::Not:
    for (ReadRes &RD : readOp(S0, I.Ops[0]))
      for (SymState &NS :
           writeOp(RD.S, I.Ops[0], Ctx.mkOp(Opcode::Not, {RD.Val}, W)))
        emitFall(std::move(NS)); // not does not touch flags
    return Out;

  case Mnemonic::Imul: {
    if (I.numOperands() == 1) {
      // rdx:rax widening multiply: keep the low half, havoc the high half.
      for (ReadRes &RD : readOp(S0, I.Ops[0])) {
        SymState NS = RD.S;
        const Expr *Rax = NS.P.readReg(Ctx, Reg::RAX, I.Ops[0].Size);
        const Expr *Lo = Ctx.mkOp(Opcode::Mul, {Rax, RD.Val}, W);
        NS.P.writeReg(Ctx, Reg::RAX, I.Ops[0].Size, false, Lo);
        NS.P.writeReg(Ctx, Reg::RDX, I.Ops[0].Size, false,
                      Ctx.mkFresh("hi", W));
        NS.P.clearFlags();
        emitFall(std::move(NS));
      }
      return Out;
    }
    const Operand &SrcA = I.numOperands() == 3 ? I.Ops[1] : I.Ops[0];
    const Operand &SrcB = I.numOperands() == 3 ? I.Ops[2] : I.Ops[1];
    for (ReadRes &RA : readOp(S0, SrcA))
      for (ReadRes &RB : readOp(RA.S, SrcB)) {
        const Expr *Res = Ctx.mkOp(Opcode::Mul, {RA.Val, RB.Val}, W);
        for (SymState &NS : writeOp(RB.S, I.Ops[0], Res)) {
          NS.P.clearFlags();
          emitFall(std::move(NS));
        }
      }
    return Out;
  }

  case Mnemonic::Mul:
    for (ReadRes &RD : readOp(S0, I.Ops[0])) {
      SymState NS = RD.S;
      const Expr *Rax = NS.P.readReg(Ctx, Reg::RAX, I.Ops[0].Size);
      NS.P.writeReg(Ctx, Reg::RAX, I.Ops[0].Size, false,
                    Ctx.mkOp(Opcode::Mul, {Rax, RD.Val}, W));
      NS.P.writeReg(Ctx, Reg::RDX, I.Ops[0].Size, false,
                    Ctx.mkFresh("hi", W));
      NS.P.clearFlags();
      emitFall(std::move(NS));
    }
    return Out;

  case Mnemonic::Div:
  case Mnemonic::Idiv:
    for (ReadRes &RD : readOp(S0, I.Ops[0])) {
      SymState NS = RD.S;
      const Expr *Rdx = NS.P.readReg(Ctx, Reg::RDX, I.Ops[0].Size);
      const Expr *Rax = NS.P.readReg(Ctx, Reg::RAX, I.Ops[0].Size);
      if (I.Mn == Mnemonic::Div && Rdx->isConst() && Rdx->constVal() == 0) {
        // Common zero-extended division: rax = rax / src, rdx = rax % src.
        NS.P.writeReg(Ctx, Reg::RAX, I.Ops[0].Size, false,
                      Ctx.mkOp(Opcode::UDiv, {Rax, RD.Val}, W));
        NS.P.writeReg(Ctx, Reg::RDX, I.Ops[0].Size, false,
                      Ctx.mkOp(Opcode::URem, {Rax, RD.Val}, W));
      } else {
        NS.P.writeReg(Ctx, Reg::RAX, I.Ops[0].Size, false,
                      Ctx.mkFresh("quot", W));
        NS.P.writeReg(Ctx, Reg::RDX, I.Ops[0].Size, false,
                      Ctx.mkFresh("rem", W));
      }
      NS.P.clearFlags();
      emitFall(std::move(NS));
    }
    return Out;

  case Mnemonic::Push: {
    for (ReadRes &R : readOp(S0, I.Ops[0])) {
      SymState Mid = R.S;
      const Expr *NewRsp = Ctx.mkAddK(Mid.P.reg64(Reg::RSP), -8);
      Mid.P.setReg64(Reg::RSP, NewRsp);
      const Expr *V =
          I.Ops[0].Size == 8 ? R.Val : Ctx.mkSExt(R.Val, 64);
      for (SymState &NS : writeMem(Mid, NewRsp, 8, V, Out))
        emitFall(std::move(NS));
    }
    return Out;
  }

  case Mnemonic::Pop: {
    const Expr *Rsp = S0.P.reg64(Reg::RSP);
    for (ReadRes &R : readMem(S0, Rsp, 8, Out)) {
      SymState Mid = R.S;
      Mid.P.setReg64(Reg::RSP, Ctx.mkAddK(Rsp, 8));
      for (SymState &NS : writeOp(Mid, I.Ops[0], R.Val))
        emitFall(std::move(NS));
    }
    return Out;
  }

  case Mnemonic::Leave: {
    SymState Mid = S0;
    const Expr *Rbp = Mid.P.reg64(Reg::RBP);
    Mid.P.setReg64(Reg::RSP, Rbp);
    for (ReadRes &R : readMem(Mid, Rbp, 8, Out)) {
      SymState NS = R.S;
      NS.P.setReg64(Reg::RBP, R.Val);
      NS.P.setReg64(Reg::RSP, Ctx.mkAddK(Rbp, 8));
      emitFall(std::move(NS));
    }
    return Out;
  }

  case Mnemonic::Call: {
    // Resolve the callee.
    std::vector<std::pair<SymState, const Expr *>> TargetStates;
    if (I.Ops[0].isImm()) {
      TargetStates.push_back(
          {S0, Ctx.mkConst(static_cast<uint64_t>(I.Ops[0].Imm), 64)});
    } else if (I.Ops[0].isReg()) {
      TargetStates.push_back({S0, S0.P.reg64(I.Ops[0].R)});
    } else {
      for (ReadRes &R : readMem(S0, memAddrExpr(S0, I, I.Ops[0].M), 8, Out))
        TargetStates.push_back({R.S, R.Val});
    }

    for (auto &[TS, Target] : TargetStates) {
      if (Target->isConst()) {
        uint64_t T = Target->constVal();
        if (auto Ext = Img.externalName(T)) {
          if (isConcurrencyExternal(*Ext)) {
            Out.SawConcurrency = true;
            Out.ExtName = *Ext;
            return Out; // binary out of scope; no successors
          }
          if (isTerminatingExternal(*Ext))
            continue; // terminating: no successor from this state
          SymState NS = TS;
          cleanForCall(NS, *Ext, I.Addr, Out);
          Out.ExtName = *Ext;
          Out.Succs.push_back(
              Succ{std::move(NS), CtrlKind::CallExternal, Next, Target});
          continue;
        }
        if (Img.isExec(T)) {
          SymState NS = TS;
          cleanForCall(NS, "f_" + hexStr(T), I.Addr, Out);
          Out.CalleeAddr = T;
          Succ Sc{std::move(NS), CtrlKind::CallInternal, Next, Target};
          Sc.CalleeAddr = T;
          Out.Succs.push_back(std::move(Sc));
          continue;
        }
      }
      // VSA: an indirect call through a read-only function-pointer table
      // resolves to one CallInternal successor per callee. Each edge is
      // re-derived by the Step-2 checker from the same invariant, so a
      // wrong resolution fails checking instead of trusting the claim.
      if (Cfg.Vsa && !Target->isConst()) {
        RipRes RR = resolveRip(Target, TS.P);
        if (RR.K == RipRes::Kind::Table) {
          bool AllInternal = true;
          for (uint64_t T : RR.Targets)
            if (Img.externalName(T)) {
              AllInternal = false;
              break;
            }
          if (AllInternal && !RR.Targets.empty()) {
            Out.ResolvedTargets += RR.Targets.size();
            for (uint64_t T : RR.Targets) {
              SymState NS = TS;
              cleanForCall(NS, "f_" + hexStr(T), I.Addr, Out);
              Succ Sc{std::move(NS), CtrlKind::CallInternal, Next, Target};
              Sc.CalleeAddr = T;
              Sc.ViaTable = RR.TableAddr;
              Out.Succs.push_back(std::move(Sc));
            }
            // Call resolutions are new behavior (legacy never resolved
            // calls), so they always carry a provenance obligation.
            Out.Obligations.push_back(
                "@" + hexStr(I.Addr) + " : vsa resolved indirect call via "
                "jump-table@" + hexStr(RR.TableAddr) + " (" +
                std::to_string(RR.Targets.size()) + " targets)");
            continue;
          }
        } else if (RR.UnboundedIndex) {
          Out.UnboundedIndex = RR.UnboundedIndex;
        }
      }
      // Unresolved call: annotate, continue as unknown external (§5.1).
      SymState NS = TS;
      cleanForCall(NS, "unknown", I.Addr, Out);
      Out.Succs.push_back(
          Succ{std::move(NS), CtrlKind::UnresCall, Next, Target});
    }
    return Out;
  }

  case Mnemonic::Ret: {
    const Expr *Rsp = S0.P.reg64(Reg::RSP);
    for (ReadRes &R : readMem(S0, Rsp, 8, Out)) {
      SymState NS = R.S;
      int64_t Extra = I.Ops[0].isImm() ? I.Ops[0].Imm : 0;
      NS.P.setReg64(Reg::RSP, Ctx.mkAddK(Rsp, 8 + Extra));

      RipRes RR = resolveRip(R.Val, NS.P);
      if (RR.K == RipRes::Kind::RetSym && R.Val == EntryRetSym) {
        // Normal return: verify the three sanity properties.
        // 1. Return-address integrity is established by R.Val being the
        //    entry symbol (the clause survived every write).
        // 2. Stack-pointer restoration: rsp == rsp0 + 8.
        LinearForm LR = expr::linearize(NS.P.reg64(Reg::RSP));
        LinearForm L0 = expr::linearize(
            Ctx.mkAddK(Ctx.mkVar(VarClass::StackBase, "rsp0", 64), 8));
        if (!(LR.sameBase(L0) && LR.Constant == L0.Constant + Extra))
          return fail("non-standard stack pointer restoration: rsp == " +
                      NS.P.reg64(Reg::RSP)->str(Ctx));
        // 3. Calling-convention adherence: callee-saved registers restored.
        for (Reg CS : {Reg::RBX, Reg::RBP, Reg::R12, Reg::R13, Reg::R14,
                       Reg::R15}) {
          const Expr *V = NS.P.reg64(CS);
          const Expr *Init =
              Ctx.mkVar(VarClass::InitReg, x86::regName(CS) + "0", 64);
          if (V != Init)
            return fail("calling convention violation: " + x86::regName(CS) +
                        " == " + V->str(Ctx));
        }
        Out.Succs.push_back(Succ{std::move(NS), CtrlKind::Ret, 0, R.Val});
        continue;
      }
      if (RR.K == RipRes::Kind::Imm && Img.isExec(RR.Addr)) {
        // A "weird" return to a concrete planted address: still bounded,
        // so the edge is emitted (this is how §2's ROP gadget shows up).
        Out.Succs.push_back(
            Succ{std::move(NS), CtrlKind::Fall, RR.Addr, R.Val});
        continue;
      }
      return fail("unprovable return address: *[rsp] == " +
                  R.Val->str(Ctx));
    }
    return Out;
  }

  case Mnemonic::Jmp: {
    if (I.Ops[0].isImm()) {
      SymState NS = S0;
      Out.Succs.push_back(Succ{std::move(NS), CtrlKind::Fall,
                               static_cast<uint64_t>(I.Ops[0].Imm), nullptr});
      return Out;
    }
    std::vector<std::pair<SymState, const Expr *>> TargetStates;
    if (I.Ops[0].isReg()) {
      TargetStates.push_back({S0, S0.P.reg64(I.Ops[0].R)});
    } else {
      for (ReadRes &R : readMem(S0, memAddrExpr(S0, I, I.Ops[0].M), 8, Out))
        TargetStates.push_back({R.S, R.Val});
    }
    for (auto &[TS, Target] : TargetStates) {
      RipRes RR = resolveRip(Target, TS.P);
      switch (RR.K) {
      case RipRes::Kind::Imm:
        if (!Img.isExec(RR.Addr))
          return fail("jump to non-executable address " + hexStr(RR.Addr));
        Out.Succs.push_back(Succ{TS, CtrlKind::Fall, RR.Addr, Target});
        break;
      case RipRes::Kind::Table: {
        Out.ResolvedTargets += RR.Targets.size();
        for (uint64_t T : RR.Targets) {
          Succ Sc{TS, CtrlKind::Fall, T, Target};
          Sc.ViaTable = RR.TableAddr;
          Out.Succs.push_back(std::move(Sc));
        }
        // Provenance obligation only when the extended VSA machinery was
        // needed: legacy-resolvable tables keep byte-identical reports.
        if (RR.UsedExtended)
          Out.Obligations.push_back(
              "@" + hexStr(I.Addr) + " : vsa resolved indirect jump via "
              "jump-table@" + hexStr(RR.TableAddr) + " (" +
              std::to_string(RR.Targets.size()) + " targets)");
        break;
      }
      case RipRes::Kind::RetSym:
        // Tail-call style return through jmp.
        Out.Succs.push_back(Succ{TS, CtrlKind::Ret, 0, Target});
        break;
      case RipRes::Kind::Unresolved:
        if (Cfg.Vsa)
          Out.UnboundedIndex = RR.UnboundedIndex;
        Out.Succs.push_back(Succ{TS, CtrlKind::UnresJump, 0, Target});
        break;
      }
    }
    return Out;
  }

  case Mnemonic::Jcc: {
    const Expr *C = S0.P.condExpr(Ctx, I.CC);
    uint64_t Taken = static_cast<uint64_t>(I.Ops[0].Imm);
    if (C && C->isConst()) {
      SymState NS = S0;
      Out.Succs.push_back(Succ{std::move(NS), CtrlKind::Fall,
                               C->constVal() ? Taken : Next, nullptr});
      return Out;
    }
    {
      SymState NS = S0;
      if (addBranchClause(NS.P, I.CC, /*Taken=*/true))
        Out.Succs.push_back(Succ{std::move(NS), CtrlKind::Fall, Taken,
                                 nullptr});
    }
    {
      SymState NS = S0;
      if (addBranchClause(NS.P, I.CC, /*Taken=*/false))
        Out.Succs.push_back(
            Succ{std::move(NS), CtrlKind::Fall, Next, nullptr});
    }
    return Out;
  }

  case Mnemonic::Setcc: {
    const Expr *C = S0.P.condExpr(Ctx, I.CC);
    const Expr *V = C ? Ctx.mkZExt(C, 8) : Ctx.mkFresh("setcc", 8);
    for (SymState &NS : writeOp(S0, I.Ops[0], V))
      emitFall(std::move(NS));
    return Out;
  }

  case Mnemonic::Cmovcc: {
    const Expr *C = S0.P.condExpr(Ctx, I.CC);
    for (ReadRes &RS : readOp(S0, I.Ops[1])) {
      const Expr *Old = pure(RS.S, I.Ops[0]);
      const Expr *V = C ? Ctx.mkIte(C, RS.Val, Old)
                        : Ctx.mkFresh("cmov", I.Ops[0].Size * 8);
      for (SymState &NS : writeOp(RS.S, I.Ops[0], V))
        emitFall(std::move(NS));
    }
    return Out;
  }

  case Mnemonic::Xchg:
    for (ReadRes &RA : readOp(S0, I.Ops[0]))
      for (ReadRes &RB : readOp(RA.S, I.Ops[1]))
        for (SymState &M1 : writeOp(RB.S, I.Ops[0], RB.Val))
          for (SymState &M2 : writeOp(M1, I.Ops[1], RA.Val))
            emitFall(std::move(M2));
    return Out;

  case Mnemonic::Cdqe: {
    SymState NS = S0;
    if (I.OpSize == 8) {
      const Expr *Eax = NS.P.readReg(Ctx, Reg::RAX, 4);
      NS.P.setReg64(Reg::RAX, Ctx.mkSExt(Eax, 64));
    } else {
      const Expr *Ax = NS.P.readReg(Ctx, Reg::RAX, 2);
      NS.P.writeReg(Ctx, Reg::RAX, 4, false, Ctx.mkSExt(Ax, 32));
    }
    emitFall(std::move(NS));
    return Out;
  }

  case Mnemonic::Cqo: {
    SymState NS = S0;
    unsigned SW = I.OpSize * 8;
    const Expr *A = NS.P.readReg(Ctx, Reg::RAX, I.OpSize);
    const Expr *Sign = Ctx.mkOp(Opcode::AShr,
                                {A, Ctx.mkConst(SW - 1, SW)}, SW);
    NS.P.writeReg(Ctx, Reg::RDX, I.OpSize, false, Sign);
    emitFall(std::move(NS));
    return Out;
  }

  case Mnemonic::Nop:
  case Mnemonic::Endbr64: {
    emitFall(S0);
    return Out;
  }

  case Mnemonic::Syscall: {
    const Expr *Rax = S0.P.reg64(Reg::RAX);
    if (Rax->isConst() &&
        (Rax->constVal() == 60 || Rax->constVal() == 231))
      return Out; // exit / exit_group: terminal
    SymState NS = S0;
    NS.P.setReg64(Reg::RAX, Ctx.mkFresh("sys_rax"));
    NS.P.setReg64(Reg::RCX, Ctx.mkConst(Next, 64));
    NS.P.setReg64(Reg::R11, Ctx.mkFresh("sys_r11"));
    NS.P.clearFlags();
    emitFall(std::move(NS));
    return Out;
  }

  case Mnemonic::Int3:
  case Mnemonic::Ud2:
  case Mnemonic::Hlt:
    return Out; // terminal: no successors

  case Mnemonic::Invalid:
    return fail("undecodable instruction");
  }

  return fail("unsupported instruction");
}

} // namespace hglift::sem
