//===- SymExec.h - The predicate transformer τ (§4) -------------*- C++ -*-===//
//
// Symbolically executes one instruction on a symbolic state ⟨P, M⟩,
// producing the set of successor states of Definition 4.2:
//
//   step_Σ(σ) = { ⟨P', M'⟩ | P' ∈ τ(P, M') ∧ M' ∈ ins(R, M) }
//
// Memory operands are evaluated to constant-expressions and inserted into
// the memory model; each nondeterministic insertion outcome yields its own
// successor (this is where the §2 weird edge forks into the aliasing and
// separation worlds). Control flow is resolved here too: direct branches,
// conditional branches (with branch-condition clauses pushed into the
// successor predicates), bounded jump-table indirections, returns (with
// the return-address-integrity and calling-convention checks), and calls
// (classified internal / external / unresolved for the algorithm's §4.2
// treatment).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SEMANTICS_SYMEXEC_H
#define HGLIFT_SEMANTICS_SYMEXEC_H

#include "diag/Diag.h"
#include "elf/Binary.h"
#include "memmodel/MemModel.h"
#include "pred/Pred.h"
#include "support/LiftStats.h"
#include "x86/Decoder.h"

#include <string>
#include <vector>

namespace hglift::sem {

using expr::Expr;
using expr::ExprContext;

struct SymState {
  pred::Pred P;
  mem::MemModel M;
};

/// How control leaves the instruction in a given successor.
enum class CtrlKind : uint8_t {
  Fall,         ///< to NextAddr (fall-through, direct or resolved jump)
  Ret,          ///< function returns to its caller (RipVal is the symbol)
  CallInternal, ///< call to CalleeAddr; successor is the return site
  CallExternal, ///< call to external ExtName; successor is the return site
  Terminal,     ///< execution stops (exit-like, hlt, ud2)
  UnresJump,    ///< indirect jump could not be bounded (annotation B)
  UnresCall,    ///< indirect call could not be resolved (annotation C)
};

struct Succ {
  SymState S;
  CtrlKind K = CtrlKind::Fall;
  uint64_t NextAddr = 0;
  /// For Ret/Unres*: the symbolic rip value, for diagnostics and export.
  const Expr *RipVal = nullptr;
  /// For CallInternal: the callee's entry address (per-successor, so a
  /// table-resolved indirect call yields one successor per callee).
  uint64_t CalleeAddr = 0;
  /// Non-zero when this successor came from a VSA table resolution: the
  /// table's first-entry address, carried into the graph edge and the
  /// DotExport provenance label.
  uint64_t ViaTable = 0;
};

struct StepOut {
  std::vector<Succ> Succs;
  /// Set when a sanity property is violated (unprovable return address,
  /// calling-convention violation, undecodable instruction, ...). The
  /// whole function is rejected, per §5.1.
  bool VerifError = false;
  std::string VerifReason;
  /// Assumptions and MUST-PRESERVE obligations generated at this step.
  std::vector<std::string> Obligations;
  /// The same facts, structured: one Diagnostic per obligation (kind
  /// ProofObligation) plus one per verification error, each carrying
  /// provenance (instruction address, mnemonic, the solver's recent
  /// relation-query chain). Filled by step() after the semantics ran;
  /// FunctionEntry is stamped later by whoever knows it (the Lifter or
  /// the Step-2 checker).
  std::vector<diag::Diagnostic> Diags;
  /// A pthread_*-style call was seen: the binary is out of scope.
  bool SawConcurrency = false;
  /// For CallInternal successors: the callee's entry address.
  uint64_t CalleeAddr = 0;
  /// For CallExternal/UnresCall successors: the callee's name if known.
  std::string ExtName;
  /// Number of distinct jump-table targets resolved here (column A).
  unsigned ResolvedTargets = 0;
  /// Set when an indirect transfer matched a table shape but its index had
  /// no usable bound under the current invariant. The lifter protects this
  /// expression across widening joins and re-explores the function (see
  /// docs/VSA.md), turning "unbounded" into a resolved table when the
  /// guard clause survives.
  const Expr *UnboundedIndex = nullptr;
};

struct SymConfig {
  mem::UnknownPolicy Policy = mem::UnknownPolicy::BranchAliasOrSep;
  /// Maximum enumerated jump-table entries before giving up (annotation).
  unsigned MaxJumpTableEntries = 1024;
  /// Value-set analysis for indirect jumps/calls (docs/VSA.md). Off
  /// reproduces the legacy absolute-jump-table-only resolver exactly.
  bool Vsa = true;
  /// Cap on distinct targets one VSA-resolved site may fan out to.
  unsigned VsaMaxTargets = 64;
};

/// Test-only semantics-mutation hook (mutation testing of the verifier,
/// src/fuzz). When installed, every SymExec::step() passes its StepOut
/// through mutate() right after the real semantics ran, letting a campaign
/// inject deliberately-wrong postconditions and measure whether the Step-2
/// checker or the concrete-execution oracle notices. Implementations must
/// be deterministic functions of (Out, Pre, I) — no RNG, no global state —
/// or campaign reproducibility breaks.
class StepMutator {
public:
  virtual ~StepMutator();
  virtual void mutate(StepOut &Out, const SymState &Pre, const x86::Instr &I,
                      ExprContext &Ctx) = 0;
};

/// Install M process-wide (nullptr to uninstall); returns the previous
/// hook. Mirrors the diag::Tracer pattern: one relaxed atomic load on the
/// hot path when no mutator is installed. Mutation campaigns are serial by
/// design (the hook is global), so install/uninstall only from one thread
/// while no concurrent lifts are running.
StepMutator *installStepMutator(StepMutator *M);
StepMutator *installedStepMutator();

class SymExec {
public:
  SymExec(ExprContext &Ctx, smt::RelationSolver &Solver,
          const elf::BinaryImage &Img, SymConfig Cfg)
      : Ctx(Ctx), Solver(Solver), Img(Img), Cfg(Cfg) {}

  /// Execute one instruction. The entry symbol EntryRetSym identifies the
  /// current function's return-address symbol (a_r or S_f), needed for the
  /// return checks.
  StepOut step(const SymState &S, const x86::Instr &I,
               const Expr *EntryRetSym);

  /// Optional stats sink: counts symbolic steps and nondeterministic forks
  /// (successors beyond the first). Pass nullptr to detach. The sink is not
  /// synchronized — one SymExec, one lifting thread.
  void setStats(LiftStats *Sink) { Stats = Sink; }

  /// External functions known to never return (hard-coded, §4.2.1).
  static bool isTerminatingExternal(const std::string &Name);
  /// pthread-style concurrency entry points (out of scope, §5.1).
  static bool isConcurrencyExternal(const std::string &Name);

  ExprContext &exprContext() { return Ctx; }
  const SymConfig &config() const { return Cfg; }

private:
  // Memory access helpers; each returns one entry per nondeterministic
  // memory-model outcome.
  struct ReadRes {
    SymState S;
    const Expr *Val;
  };
  std::vector<ReadRes> readMem(const SymState &S, const Expr *Addr,
                               unsigned Size, StepOut &Out);
  std::vector<SymState> writeMem(const SymState &S, const Expr *Addr,
                                 unsigned Size, const Expr *Val,
                                 StepOut &Out);

  const Expr *memAddrExpr(const SymState &S, const x86::Instr &I,
                          const x86::MemOperand &M);

  /// Resolution of a symbolic rip value.
  struct RipRes {
    enum class Kind : uint8_t { Imm, Table, RetSym, Unresolved } K;
    uint64_t Addr = 0;
    std::vector<uint64_t> Targets;
    /// For Table: the table's first-entry address (edge provenance).
    uint64_t TableAddr = 0;
    /// True when the resolution needed the extended VSA machinery and must
    /// therefore be annotated with a provenance obligation.
    bool UsedExtended = false;
    /// For Unresolved: the index of a recognized-but-unbounded table shape.
    const Expr *UnboundedIndex = nullptr;
  };
  RipRes resolveRip(const Expr *Val, const pred::Pred &P);

  /// Clean the state for a function call (§4.2.1): havoc volatile
  /// registers and non-stack memory values, keep the local frame; emit
  /// MUST-PRESERVE obligations for stack pointers escaping into the call.
  void cleanForCall(SymState &S, const std::string &CalleeName,
                    uint64_t CallAddr, StepOut &Out);

  /// Add the branch-condition clause for condition CC (taken or not) to P.
  /// Returns false if the clause contradicts P (successor unreachable).
  bool addBranchClause(pred::Pred &P, x86::Cond CC, bool Taken);

  StepOut stepImpl(const SymState &S, const x86::Instr &I,
                   const Expr *EntryRetSym);

  ExprContext &Ctx;
  smt::RelationSolver &Solver;
  const elf::BinaryImage &Img;
  SymConfig Cfg;
  LiftStats *Stats = nullptr;
};

} // namespace hglift::sem

#endif // HGLIFT_SEMANTICS_SYMEXEC_H
