//===- Binary.h - Loaded binary image --------------------------*- C++ -*-===//
//
// The lifter's view of a binary (Definition 3.1): an entry point, loadable
// segments with permissions, and symbol information. `fetch` is implemented
// on top of this by the decoder; reads from read-only segments are used to
// concretize jump-table entries (§2: "up to 0xc3 edges: one per read
// value").
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_ELF_BINARY_H
#define HGLIFT_ELF_BINARY_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hglift::elf {

struct Segment {
  uint64_t VAddr = 0;
  std::vector<uint8_t> Bytes;
  bool Exec = false;
  bool Write = false;

  uint64_t end() const { return VAddr + Bytes.size(); }
  bool contains(uint64_t A, uint64_t Size = 1) const {
    return A >= VAddr && A + Size <= end();
  }
};

struct Symbol {
  std::string Name;
  uint64_t Addr = 0;
  uint64_t Size = 0;
  bool IsFunc = false;
};

/// A loaded binary image: what the lifter analyzes.
class BinaryImage {
public:
  uint64_t Entry = 0;
  std::vector<Segment> Segments;
  /// Defined function symbols (entry points for library-function lifting,
  /// like the paper's use of `nm` on Xen's shared objects).
  std::vector<Symbol> Functions;
  /// PLT stub address -> external function name (e.g. 0x401020 -> "memset").
  std::map<uint64_t, std::string> PltStubs;
  /// Human-readable name for reports.
  std::string Name;

  const Segment *segmentAt(uint64_t Addr, uint64_t Size = 1) const {
    for (const Segment &S : Segments)
      if (S.contains(Addr, Size))
        return &S;
    return nullptr;
  }

  /// Read Size bytes (1..8) little-endian. nullopt if unmapped.
  std::optional<uint64_t> read(uint64_t Addr, unsigned Size) const {
    const Segment *S = segmentAt(Addr, Size);
    if (!S)
      return std::nullopt;
    uint64_t V = 0;
    for (unsigned I = 0; I < Size; ++I)
      V |= static_cast<uint64_t>(S->Bytes[Addr - S->VAddr + I]) << (8 * I);
    return V;
  }

  /// Pointer to raw bytes at Addr (at least Avail bytes), or nullptr.
  const uint8_t *bytesAt(uint64_t Addr, size_t &Avail) const {
    const Segment *S = segmentAt(Addr);
    if (!S) {
      Avail = 0;
      return nullptr;
    }
    Avail = S->end() - Addr;
    return S->Bytes.data() + (Addr - S->VAddr);
  }

  bool isExec(uint64_t Addr) const {
    const Segment *S = segmentAt(Addr);
    return S && S->Exec;
  }
  bool isReadOnly(uint64_t Addr, uint64_t Size = 1) const {
    const Segment *S = segmentAt(Addr, Size);
    return S && !S->Write;
  }
  /// Is Addr inside any executable segment? Used by the join heuristic
  /// (§4: immediates "that fall in the range of text sections").
  bool isTextPointer(uint64_t Addr) const { return isExec(Addr); }

  /// External function name if Addr is a PLT stub.
  std::optional<std::string> externalName(uint64_t Addr) const {
    auto It = PltStubs.find(Addr);
    if (It == PltStubs.end())
      return std::nullopt;
    return It->second;
  }
};

} // namespace hglift::elf

#endif // HGLIFT_ELF_BINARY_H
