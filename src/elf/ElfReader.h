//===- ElfReader.h - Parse ELF64 into a BinaryImage ------------*- C++ -*-===//

#ifndef HGLIFT_ELF_ELFREADER_H
#define HGLIFT_ELF_ELFREADER_H

#include "elf/Binary.h"

#include <optional>
#include <string>
#include <vector>

namespace hglift::elf {

/// Parse ELF64 bytes into a BinaryImage. Returns nullopt on malformed
/// input (bad magic, truncated headers, out-of-range offsets). The parser
/// is defensive: a hostile binary must produce a parse error, never UB.
std::optional<BinaryImage> readElf(const std::vector<uint8_t> &Bytes,
                                   const std::string &Name = "");

/// Convenience: read an ELF from a file on disk.
std::optional<BinaryImage> readElfFile(const std::string &Path);

} // namespace hglift::elf

#endif // HGLIFT_ELF_ELFREADER_H
