//===- Elf.h - ELF64 on-disk structures ------------------------*- C++ -*-===//
//
// Minimal ELF64 definitions (we implement the format from the spec rather
// than depending on <elf.h>, so the writer/reader pair is self-contained
// and testable on any host).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_ELF_ELF_H
#define HGLIFT_ELF_ELF_H

#include <cstdint>

namespace hglift::elf {

constexpr uint8_t ElfMag[4] = {0x7f, 'E', 'L', 'F'};
constexpr uint8_t ElfClass64 = 2;
constexpr uint8_t ElfData2Lsb = 1;
constexpr uint16_t EtExec = 2;
constexpr uint16_t EtDyn = 3;
constexpr uint16_t EmX8664 = 62;

constexpr uint32_t PtLoad = 1;
constexpr uint32_t PfX = 1, PfW = 2, PfR = 4;

constexpr uint32_t ShtNull = 0, ShtProgbits = 1, ShtSymtab = 2, ShtStrtab = 3,
                   ShtNobits = 8;
constexpr uint64_t ShfWrite = 1, ShfAlloc = 2, ShfExecinstr = 4;

constexpr uint8_t SttFunc = 2;
constexpr uint8_t StbGlobal = 1;

#pragma pack(push, 1)
struct Ehdr {
  uint8_t Ident[16];
  uint16_t Type;
  uint16_t Machine;
  uint32_t Version;
  uint64_t Entry;
  uint64_t Phoff;
  uint64_t Shoff;
  uint32_t Flags;
  uint16_t Ehsize;
  uint16_t Phentsize;
  uint16_t Phnum;
  uint16_t Shentsize;
  uint16_t Shnum;
  uint16_t Shstrndx;
};

struct Phdr {
  uint32_t Type;
  uint32_t Flags;
  uint64_t Offset;
  uint64_t Vaddr;
  uint64_t Paddr;
  uint64_t Filesz;
  uint64_t Memsz;
  uint64_t Align;
};

struct Shdr {
  uint32_t Name;
  uint32_t Type;
  uint64_t Flags;
  uint64_t Addr;
  uint64_t Offset;
  uint64_t Size;
  uint32_t Link;
  uint32_t Info;
  uint64_t Addralign;
  uint64_t Entsize;
};

struct Sym {
  uint32_t Name;
  uint8_t Info;
  uint8_t Other;
  uint16_t Shndx;
  uint64_t Value;
  uint64_t Size;
};
#pragma pack(pop)

static_assert(sizeof(Ehdr) == 64);
static_assert(sizeof(Phdr) == 56);
static_assert(sizeof(Shdr) == 64);
static_assert(sizeof(Sym) == 24);

} // namespace hglift::elf

#endif // HGLIFT_ELF_ELF_H
