//===- ElfWriter.h - Build ELF64 executables -------------------*- C++ -*-===//
//
// Serializes a set of sections + symbols into a valid ELF64 file. The
// corpus generator uses this to synthesize the evaluation binaries; the
// reader parses them back, and examples write them to disk so they can be
// inspected with standard tools (readelf/objdump).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_ELF_ELFWRITER_H
#define HGLIFT_ELF_ELFWRITER_H

#include "elf/Binary.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hglift::elf {

struct OutSection {
  std::string Name; // ".text", ".plt", ".rodata", ".data"
  uint64_t VAddr = 0;
  std::vector<uint8_t> Bytes;
  bool Exec = false;
  bool Write = false;
};

struct OutSymbol {
  std::string Name;
  uint64_t Addr = 0;
  uint64_t Size = 0;
  bool IsFunc = true;
  /// True for symbols describing PLT stubs of external functions; they are
  /// emitted with an "@plt" suffix, which the reader recognizes.
  bool IsPltStub = false;
};

struct ElfSpec {
  uint64_t Entry = 0;
  bool SharedObject = false; // ET_DYN vs ET_EXEC
  std::vector<OutSection> Sections;
  std::vector<OutSymbol> Symbols;
};

/// Serialize Spec into ELF64 file bytes.
std::vector<uint8_t> writeElf(const ElfSpec &Spec);

} // namespace hglift::elf

#endif // HGLIFT_ELF_ELFWRITER_H
