#include "elf/ElfWriter.h"

#include "elf/Elf.h"

#include <cstring>

namespace hglift::elf {

namespace {

void append(std::vector<uint8_t> &Out, const void *P, size_t N) {
  const uint8_t *B = static_cast<const uint8_t *>(P);
  Out.insert(Out.end(), B, B + N);
}

void padTo(std::vector<uint8_t> &Out, size_t Align) {
  while (Out.size() % Align != 0)
    Out.push_back(0);
}

} // namespace

std::vector<uint8_t> writeElf(const ElfSpec &Spec) {
  // Layout:
  //   Ehdr | Phdrs | section contents... | .symtab | .strtab | .shstrtab
  //   | Shdrs
  const size_t NumSections = Spec.Sections.size();
  const size_t NumPhdrs = NumSections; // one PT_LOAD per section (simple)

  std::vector<uint8_t> Out;
  Out.resize(sizeof(Ehdr) + NumPhdrs * sizeof(Phdr));

  // Section contents.
  std::vector<uint64_t> SecOffsets;
  for (const OutSection &S : Spec.Sections) {
    padTo(Out, 16);
    SecOffsets.push_back(Out.size());
    append(Out, S.Bytes.data(), S.Bytes.size());
  }

  // String table for symbols.
  std::string Strtab;
  Strtab.push_back('\0');
  std::vector<Sym> Syms;
  Syms.push_back(Sym{}); // null symbol
  for (const OutSymbol &S : Spec.Symbols) {
    Sym Y{};
    Y.Name = static_cast<uint32_t>(Strtab.size());
    std::string N = S.Name + (S.IsPltStub ? "@plt" : "");
    Strtab += N;
    Strtab.push_back('\0');
    Y.Info = static_cast<uint8_t>((StbGlobal << 4) | (S.IsFunc ? SttFunc : 0));
    Y.Shndx = 1; // not used by our reader beyond "defined"
    Y.Value = S.Addr;
    Y.Size = S.Size;
    Syms.push_back(Y);
  }

  padTo(Out, 8);
  uint64_t SymtabOff = Out.size();
  append(Out, Syms.data(), Syms.size() * sizeof(Sym));
  uint64_t StrtabOff = Out.size();
  append(Out, Strtab.data(), Strtab.size());

  // Section-header string table.
  std::string Shstr;
  Shstr.push_back('\0');
  auto shstrAdd = [&](const std::string &N) {
    uint32_t Off = static_cast<uint32_t>(Shstr.size());
    Shstr += N;
    Shstr.push_back('\0');
    return Off;
  };
  std::vector<uint32_t> SecNameOffs;
  for (const OutSection &S : Spec.Sections)
    SecNameOffs.push_back(shstrAdd(S.Name));
  uint32_t SymtabName = shstrAdd(".symtab");
  uint32_t StrtabName = shstrAdd(".strtab");
  uint32_t ShstrName = shstrAdd(".shstrtab");
  uint64_t ShstrOff = Out.size();
  append(Out, Shstr.data(), Shstr.size());

  // Section headers: null + sections + symtab + strtab + shstrtab.
  padTo(Out, 8);
  uint64_t ShdrOff = Out.size();
  std::vector<Shdr> Shdrs;
  Shdrs.push_back(Shdr{}); // null
  for (size_t I = 0; I < NumSections; ++I) {
    const OutSection &S = Spec.Sections[I];
    Shdr H{};
    H.Name = SecNameOffs[I];
    H.Type = ShtProgbits;
    H.Flags = ShfAlloc | (S.Exec ? ShfExecinstr : 0) | (S.Write ? ShfWrite : 0);
    H.Addr = S.VAddr;
    H.Offset = SecOffsets[I];
    H.Size = S.Bytes.size();
    H.Addralign = 16;
    Shdrs.push_back(H);
  }
  uint32_t StrtabIndex = static_cast<uint32_t>(Shdrs.size() + 1);
  {
    Shdr H{};
    H.Name = SymtabName;
    H.Type = ShtSymtab;
    H.Offset = SymtabOff;
    H.Size = Syms.size() * sizeof(Sym);
    H.Link = StrtabIndex;
    H.Info = 1;
    H.Entsize = sizeof(Sym);
    H.Addralign = 8;
    Shdrs.push_back(H);
  }
  {
    Shdr H{};
    H.Name = StrtabName;
    H.Type = ShtStrtab;
    H.Offset = StrtabOff;
    H.Size = Strtab.size();
    H.Addralign = 1;
    Shdrs.push_back(H);
  }
  uint16_t ShstrIndex = static_cast<uint16_t>(Shdrs.size());
  {
    Shdr H{};
    H.Name = ShstrName;
    H.Type = ShtStrtab;
    H.Offset = ShstrOff;
    H.Size = Shstr.size();
    H.Addralign = 1;
    Shdrs.push_back(H);
  }
  append(Out, Shdrs.data(), Shdrs.size() * sizeof(Shdr));

  // Program headers.
  std::vector<Phdr> Phdrs;
  for (size_t I = 0; I < NumSections; ++I) {
    const OutSection &S = Spec.Sections[I];
    Phdr P{};
    P.Type = PtLoad;
    P.Flags = PfR | (S.Exec ? PfX : 0) | (S.Write ? PfW : 0);
    P.Offset = SecOffsets[I];
    P.Vaddr = P.Paddr = S.VAddr;
    P.Filesz = P.Memsz = S.Bytes.size();
    P.Align = 0x1000;
    Phdrs.push_back(P);
  }
  std::memcpy(Out.data() + sizeof(Ehdr), Phdrs.data(),
              Phdrs.size() * sizeof(Phdr));

  // ELF header.
  Ehdr E{};
  std::memcpy(E.Ident, ElfMag, 4);
  E.Ident[4] = ElfClass64;
  E.Ident[5] = ElfData2Lsb;
  E.Ident[6] = 1; // EV_CURRENT
  E.Type = Spec.SharedObject ? EtDyn : EtExec;
  E.Machine = EmX8664;
  E.Version = 1;
  E.Entry = Spec.Entry;
  E.Phoff = sizeof(Ehdr);
  E.Shoff = ShdrOff;
  E.Ehsize = sizeof(Ehdr);
  E.Phentsize = sizeof(Phdr);
  E.Phnum = static_cast<uint16_t>(Phdrs.size());
  E.Shentsize = sizeof(Shdr);
  E.Shnum = static_cast<uint16_t>(Shdrs.size());
  E.Shstrndx = ShstrIndex;
  std::memcpy(Out.data(), &E, sizeof(Ehdr));

  return Out;
}

} // namespace hglift::elf
