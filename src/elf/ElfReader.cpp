#include "elf/ElfReader.h"

#include "elf/Elf.h"

#include <cstring>
#include <fstream>

namespace hglift::elf {

namespace {

/// Bounds-checked structure read.
template <typename T>
bool readAt(const std::vector<uint8_t> &Bytes, uint64_t Off, T &Out) {
  if (Off > Bytes.size() || Bytes.size() - Off < sizeof(T))
    return false;
  std::memcpy(&Out, Bytes.data() + Off, sizeof(T));
  return true;
}

/// NUL-terminated string from a string table region; empty on overflow.
std::string strAt(const std::vector<uint8_t> &Bytes, uint64_t TabOff,
                  uint64_t TabSize, uint32_t Idx) {
  if (Idx >= TabSize)
    return "";
  uint64_t Off = TabOff + Idx;
  std::string S;
  while (Off < Bytes.size() && Off < TabOff + TabSize && Bytes[Off] != 0)
    S.push_back(static_cast<char>(Bytes[Off++]));
  return S;
}

} // namespace

std::optional<BinaryImage> readElf(const std::vector<uint8_t> &Bytes,
                                   const std::string &Name) {
  Ehdr E;
  if (!readAt(Bytes, 0, E))
    return std::nullopt;
  if (std::memcmp(E.Ident, ElfMag, 4) != 0 || E.Ident[4] != ElfClass64 ||
      E.Ident[5] != ElfData2Lsb)
    return std::nullopt;
  if (E.Machine != EmX8664)
    return std::nullopt;
  if (E.Phentsize != sizeof(Phdr) && E.Phnum != 0)
    return std::nullopt;
  if (E.Shentsize != sizeof(Shdr) && E.Shnum != 0)
    return std::nullopt;

  BinaryImage Img;
  Img.Entry = E.Entry;
  Img.Name = Name;

  // Loadable segments.
  for (uint16_t I = 0; I < E.Phnum; ++I) {
    Phdr P;
    if (!readAt(Bytes, E.Phoff + static_cast<uint64_t>(I) * sizeof(Phdr), P))
      return std::nullopt;
    if (P.Type != PtLoad)
      continue;
    if (P.Offset > Bytes.size() || Bytes.size() - P.Offset < P.Filesz)
      return std::nullopt;
    if (P.Memsz < P.Filesz || P.Memsz > (uint64_t(1) << 32))
      return std::nullopt;
    Segment S;
    S.VAddr = P.Vaddr;
    S.Exec = P.Flags & PfX;
    S.Write = P.Flags & PfW;
    S.Bytes.assign(Bytes.begin() + static_cast<ptrdiff_t>(P.Offset),
                   Bytes.begin() + static_cast<ptrdiff_t>(P.Offset + P.Filesz));
    S.Bytes.resize(P.Memsz, 0); // zero-fill .bss-style tail
    Img.Segments.push_back(std::move(S));
  }

  // Symbols: find SHT_SYMTAB and its linked string table.
  for (uint16_t I = 0; I < E.Shnum; ++I) {
    Shdr H;
    if (!readAt(Bytes, E.Shoff + static_cast<uint64_t>(I) * sizeof(Shdr), H))
      return std::nullopt;
    if (H.Type != ShtSymtab || H.Entsize != sizeof(Sym))
      continue;
    Shdr StrH;
    if (!readAt(Bytes, E.Shoff + static_cast<uint64_t>(H.Link) * sizeof(Shdr),
                StrH))
      return std::nullopt;
    uint64_t Count = H.Size / sizeof(Sym);
    for (uint64_t J = 1; J < Count; ++J) {
      Sym Y;
      if (!readAt(Bytes, H.Offset + J * sizeof(Sym), Y))
        return std::nullopt;
      std::string SymName = strAt(Bytes, StrH.Offset, StrH.Size, Y.Name);
      if (SymName.empty())
        continue;
      bool IsFunc = (Y.Info & 0xf) == SttFunc;
      // "name@plt" marks an external-function stub.
      size_t At = SymName.rfind("@plt");
      if (At != std::string::npos && At == SymName.size() - 4) {
        Img.PltStubs[Y.Value] = SymName.substr(0, At);
        continue;
      }
      if (IsFunc)
        Img.Functions.push_back(Symbol{SymName, Y.Value, Y.Size, true});
    }
  }

  return Img;
}

std::optional<BinaryImage> readElfFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  std::string Base = Path;
  size_t Slash = Base.find_last_of('/');
  if (Slash != std::string::npos)
    Base = Base.substr(Slash + 1);
  return readElf(Bytes, Base);
}

} // namespace hglift::elf
