#include "pred/Pred.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <unordered_map>

namespace hglift::pred {

// --- version stamps ----------------------------------------------------------

namespace {
/// Process-wide stamp source. Stamp *values* are only ever compared for
/// equality (never ordered or persisted), so cross-thread interleaving of
/// increments cannot change any observable behavior — each function lift
/// sees a schedule-independent equality structure over its own stamps.
std::atomic<uint64_t> VersionCounter{1};

inline uint64_t mix64(uint64_t H, uint64_t V) {
  V *= 0x9e3779b97f4a7c15ULL;
  V ^= V >> 29;
  H ^= V;
  return H * 0xbf58476d1ce4e5b9ULL + 1;
}
} // namespace

void Pred::bumpVersion() {
  Version = VersionCounter.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Pred::digest() const {
  if (DigestVersion == Version)
    return DigestValue;
  uint64_t H = Bottom ? 0x5eed : 0x1234;
  for (unsigned I = 0; I < x86::NumGPRs; ++I)
    H = mix64(H, Regs[I] ? Regs[I]->hashValue() : I + 1);
  H = mix64(H, static_cast<uint64_t>(Flags.K) * 131 + Flags.Width);
  if (Flags.L)
    H = mix64(H, Flags.L->hashValue());
  if (Flags.R)
    H = mix64(H, Flags.R->hashValue());
  for (const MemCell &C : Cells) {
    H = mix64(H, C.Addr->hashValue());
    H = mix64(H, C.Size);
    H = mix64(H, C.Val->hashValue());
  }
  for (const RangeClause &C : Ranges) {
    H = mix64(H, C.E->hashValue());
    H = mix64(H, static_cast<uint64_t>(C.Op) * 0x101 + 0x57);
    H = mix64(H, C.Bound);
  }
  DigestVersion = Version;
  DigestValue = H;
  return H;
}

using expr::ExprKind;
using expr::Opcode;
using expr::VarClass;
using x86::Cond;
using x86::Reg;

namespace {
/// Soft cap on stored range clauses; excess clauses are dropped, which only
/// weakens the predicate.
constexpr size_t MaxRanges = 64;
} // namespace

const char *relOpName(RelOp Op) {
  switch (Op) {
  case RelOp::Eq:
    return "==";
  case RelOp::Ne:
    return "!=";
  case RelOp::ULt:
    return "<u";
  case RelOp::ULe:
    return "<=u";
  case RelOp::UGe:
    return ">=u";
  case RelOp::UGt:
    return ">u";
  case RelOp::SLt:
    return "<s";
  case RelOp::SLe:
    return "<=s";
  case RelOp::SGe:
    return ">=s";
  case RelOp::SGt:
    return ">s";
  }
  return "?";
}

Pred Pred::entry(ExprContext &Ctx, const Expr *RetSymTop) {
  Pred P;
  for (unsigned I = 0; I < x86::NumGPRs; ++I) {
    Reg R = x86::regFromNum(I);
    std::string Name = x86::regName(R) + "0";
    VarClass Cls = (R == Reg::RSP) ? VarClass::StackBase : VarClass::InitReg;
    P.Regs[I] = Ctx.mkVar(Cls, Name, 64);
  }
  const Expr *Rsp0 = P.Regs[x86::regNum(Reg::RSP)];
  const Expr *Ret =
      RetSymTop ? RetSymTop : Ctx.mkVar(VarClass::RetAddr, "a_r", 64);
  P.Cells.push_back(MemCell{Rsp0, 8, Ret});
  P.bumpVersion();
  return P;
}

// --- registers --------------------------------------------------------------

const Expr *Pred::readReg(ExprContext &Ctx, Reg R, unsigned SizeBytes,
                          bool HighByte) const {
  const Expr *Full = Regs[x86::regNum(R)];
  if (SizeBytes == 8)
    return Full;
  if (HighByte) {
    const Expr *Shifted =
        Ctx.mkBin(Opcode::LShr, Full, Ctx.mkConst(8, 64));
    return Ctx.mkTrunc(Shifted, 8);
  }
  return Ctx.mkTrunc(Full, SizeBytes * 8);
}

void Pred::writeReg(ExprContext &Ctx, Reg R, unsigned SizeBytes, bool HighByte,
                    const Expr *V) {
  bumpVersion();
  unsigned N = x86::regNum(R);
  const Expr *Old = Regs[N];
  switch (SizeBytes) {
  case 8:
    Regs[N] = V;
    return;
  case 4:
    // 32-bit writes zero the upper half.
    Regs[N] = Ctx.mkZExt(V, 64);
    return;
  case 2: {
    const Expr *Kept = Ctx.mkBin(Opcode::And, Old,
                                 Ctx.mkConst(~uint64_t(0xffff), 64));
    Regs[N] = Ctx.mkBin(Opcode::Or, Kept, Ctx.mkZExt(V, 64));
    return;
  }
  case 1: {
    uint64_t Mask = HighByte ? uint64_t(0xff00) : uint64_t(0xff);
    const Expr *Kept =
        Ctx.mkBin(Opcode::And, Old, Ctx.mkConst(~Mask, 64));
    const Expr *New = Ctx.mkZExt(V, 64);
    if (HighByte)
      New = Ctx.mkBin(Opcode::Shl, New, Ctx.mkConst(8, 64));
    Regs[N] = Ctx.mkBin(Opcode::Or, Kept, New);
    return;
  }
  default:
    Regs[N] = Ctx.mkFresh("reg");
  }
}

// --- flags ------------------------------------------------------------------

void Pred::setFlagsCmp(const Expr *L, const Expr *R, unsigned Width) {
  Flags = FlagState{FlagState::Kind::Cmp, L, R, static_cast<uint8_t>(Width)};
  bumpVersion();
}

void Pred::setFlagsTest(const Expr *L, const Expr *R, unsigned Width) {
  Flags = FlagState{FlagState::Kind::Test, L, R, static_cast<uint8_t>(Width)};
  bumpVersion();
}

void Pred::setFlagsRes(const Expr *Res, unsigned Width) {
  Flags =
      FlagState{FlagState::Kind::Res, Res, nullptr, static_cast<uint8_t>(Width)};
  bumpVersion();
}

void Pred::setFlagsZeroOf(const Expr *L, unsigned Width) {
  Flags = FlagState{FlagState::Kind::ZeroOf, L, nullptr,
                    static_cast<uint8_t>(Width)};
  bumpVersion();
}

const Expr *Pred::condExpr(ExprContext &Ctx, Cond CC) const {
  auto NotB = [&](const Expr *B) {
    return B ? Ctx.mkBin(Opcode::Xor, B, Ctx.mkTrue()) : nullptr;
  };

  if (Flags.K == FlagState::Kind::Cmp) {
    const Expr *L = Flags.L, *R = Flags.R;
    unsigned W = Flags.Width;
    switch (CC) {
    case Cond::E:
      return Ctx.mkOp(Opcode::Eq, {L, R}, 1);
    case Cond::NE:
      return Ctx.mkOp(Opcode::Ne, {L, R}, 1);
    case Cond::B:
      return Ctx.mkOp(Opcode::ULt, {L, R}, 1);
    case Cond::AE:
      return NotB(Ctx.mkOp(Opcode::ULt, {L, R}, 1));
    case Cond::BE:
      return Ctx.mkOp(Opcode::ULe, {L, R}, 1);
    case Cond::A:
      return NotB(Ctx.mkOp(Opcode::ULe, {L, R}, 1));
    case Cond::L:
      return Ctx.mkOp(Opcode::SLt, {L, R}, 1);
    case Cond::GE:
      return NotB(Ctx.mkOp(Opcode::SLt, {L, R}, 1));
    case Cond::LE:
      return Ctx.mkOp(Opcode::SLe, {L, R}, 1);
    case Cond::G:
      return NotB(Ctx.mkOp(Opcode::SLe, {L, R}, 1));
    case Cond::S:
      // SF = sign of (L - R); not the same as L <s R under overflow.
      return Ctx.mkOp(Opcode::SLt,
                      {Ctx.mkOp(Opcode::Sub, {L, R}, W), Ctx.mkConst(0, W)},
                      1);
    case Cond::NS:
      return NotB(condExpr(Ctx, Cond::S));
    default:
      return nullptr; // O/NO/P/NP unknown
    }
  }

  if (Flags.K == FlagState::Kind::Test) {
    unsigned W = Flags.Width;
    const Expr *AndE = Ctx.mkOp(Opcode::And, {Flags.L, Flags.R}, W);
    const Expr *Zero = Ctx.mkConst(0, W);
    switch (CC) {
    case Cond::E:
      return Ctx.mkOp(Opcode::Eq, {AndE, Zero}, 1);
    case Cond::NE:
      return Ctx.mkOp(Opcode::Ne, {AndE, Zero}, 1);
    case Cond::S:
      return Ctx.mkOp(Opcode::SLt, {AndE, Zero}, 1);
    case Cond::NS:
      return NotB(Ctx.mkOp(Opcode::SLt, {AndE, Zero}, 1));
    // After test: CF = OF = 0.
    case Cond::B:
      return Ctx.mkFalse();
    case Cond::AE:
      return Ctx.mkTrue();
    case Cond::BE: // CF | ZF = ZF
      return Ctx.mkOp(Opcode::Eq, {AndE, Zero}, 1);
    case Cond::A: // !CF & !ZF
      return Ctx.mkOp(Opcode::Ne, {AndE, Zero}, 1);
    case Cond::L: // SF != OF = SF
      return Ctx.mkOp(Opcode::SLt, {AndE, Zero}, 1);
    case Cond::GE:
      return NotB(Ctx.mkOp(Opcode::SLt, {AndE, Zero}, 1));
    case Cond::LE: { // ZF | SF
      const Expr *Z = Ctx.mkOp(Opcode::Eq, {AndE, Zero}, 1);
      const Expr *S = Ctx.mkOp(Opcode::SLt, {AndE, Zero}, 1);
      return Ctx.mkOp(Opcode::Or, {Z, S}, 1);
    }
    case Cond::G: {
      const Expr *NZ = Ctx.mkOp(Opcode::Ne, {AndE, Zero}, 1);
      const Expr *NS = NotB(Ctx.mkOp(Opcode::SLt, {AndE, Zero}, 1));
      return Ctx.mkOp(Opcode::And, {NZ, NS}, 1);
    }
    default:
      return nullptr;
    }
  }

  if (Flags.K == FlagState::Kind::ZeroOf) {
    unsigned W = Flags.Width;
    const Expr *Zero = Ctx.mkConst(0, W);
    switch (CC) {
    case Cond::E:
      return Ctx.mkOp(Opcode::Eq, {Flags.L, Zero}, 1);
    case Cond::NE:
      return Ctx.mkOp(Opcode::Ne, {Flags.L, Zero}, 1);
    default:
      return nullptr;
    }
  }

  if (Flags.K == FlagState::Kind::Res) {
    unsigned W = Flags.Width;
    const Expr *Zero = Ctx.mkConst(0, W);
    switch (CC) {
    case Cond::E:
      return Ctx.mkOp(Opcode::Eq, {Flags.L, Zero}, 1);
    case Cond::NE:
      return Ctx.mkOp(Opcode::Ne, {Flags.L, Zero}, 1);
    case Cond::S:
      return Ctx.mkOp(Opcode::SLt, {Flags.L, Zero}, 1);
    case Cond::NS:
      return NotB(Ctx.mkOp(Opcode::SLt, {Flags.L, Zero}, 1));
    default:
      return nullptr;
    }
  }

  return nullptr;
}

// --- memory clauses ----------------------------------------------------------

const MemCell *Pred::findCell(const Expr *Addr, uint32_t Size) const {
  for (const MemCell &C : Cells)
    if (C.Addr == Addr && C.Size == Size)
      return &C;
  return nullptr;
}

void Pred::setCell(const Expr *Addr, uint32_t Size, const Expr *Val) {
  for (MemCell &C : Cells)
    if (C.Addr == Addr && C.Size == Size) {
      if (C.Val == Val)
        return; // content unchanged; keep the stamp (and cache entries)
      C.Val = Val;
      bumpVersion();
      return;
    }
  Cells.push_back(MemCell{Addr, Size, Val});
  bumpVersion();
}

void Pred::removeCell(const Expr *Addr, uint32_t Size) {
  size_t Before = Cells.size();
  Cells.erase(std::remove_if(Cells.begin(), Cells.end(),
                             [&](const MemCell &C) {
                               return C.Addr == Addr && C.Size == Size;
                             }),
              Cells.end());
  if (Cells.size() != Before)
    bumpVersion();
}

void Pred::filterCells(const std::function<bool(const MemCell &)> &Keep) {
  size_t Before = Cells.size();
  Cells.erase(std::remove_if(Cells.begin(), Cells.end(),
                             [&](const MemCell &C) { return !Keep(C); }),
              Cells.end());
  if (Cells.size() != Before)
    bumpVersion();
}

// --- range clauses ------------------------------------------------------------

void Pred::addRange(const Expr *E, RelOp Op, uint64_t Bound) {
  if (E->isConst())
    return; // either trivially true or the state is unreachable; keep simple
  RangeClause C{E, Op, Bound};
  for (const RangeClause &Existing : Ranges)
    if (Existing == C)
      return;
  if (Ranges.size() < MaxRanges) {
    Ranges.push_back(C);
    bumpVersion();
  }
}

void Pred::clearRangesFor(const Expr *E) {
  size_t Before = Ranges.size();
  Ranges.erase(std::remove_if(Ranges.begin(), Ranges.end(),
                              [&](const RangeClause &C) { return C.E == E; }),
               Ranges.end());
  if (Ranges.size() != Before)
    bumpVersion();
}

namespace {

/// Signed interval implied by a single clause.
Interval clauseInterval(RelOp Op, uint64_t Bound) {
  int64_t SB = static_cast<int64_t>(Bound);
  switch (Op) {
  case RelOp::Eq:
    return Interval(SB);
  case RelOp::ULt:
    // x <u B with B representable as nonneg signed: x in [0, B-1].
    if (Bound != 0 && Bound <= static_cast<uint64_t>(INT64_MAX))
      return Interval(0, SB - 1);
    return Interval::top();
  case RelOp::ULe:
    if (Bound <= static_cast<uint64_t>(INT64_MAX))
      return Interval(0, SB);
    return Interval::top();
  case RelOp::UGe:
  case RelOp::UGt:
    // x >=u B constrains the unsigned view only; the signed interval wraps,
    // so nothing useful without a matching upper bound.
    return Interval::top();
  case RelOp::SLt:
    if (SB == INT64_MIN)
      return Interval::empty();
    return Interval(INT64_MIN, SB - 1);
  case RelOp::SLe:
    return Interval(INT64_MIN, SB);
  case RelOp::SGe:
    return Interval(SB, INT64_MAX);
  case RelOp::SGt:
    if (SB == INT64_MAX)
      return Interval::empty();
    return Interval(SB + 1, INT64_MAX);
  case RelOp::Ne:
    return Interval::top();
  }
  return Interval::top();
}

} // namespace

Interval Pred::atomInterval(const Expr *A, bool Extended) const {
  Interval I = Interval::top();
  // A zero-extension from width w is bounded by [0, 2^w - 1], and clauses
  // on the inner operand carry over (zext preserves the unsigned value).
  if (A->isOp() && A->opcode() == Opcode::ZExt &&
      A->operand(0)->width() < 64) {
    I = I.meet(Interval(
        0, static_cast<int64_t>(
               (uint64_t(1) << A->operand(0)->width()) - 1)));
    for (const RangeClause &C : Ranges)
      if (C.E == A->operand(0) &&
          (C.Op == RelOp::ULt || C.Op == RelOp::ULe || C.Op == RelOp::Eq))
        I = I.meet(clauseInterval(C.Op, C.Bound));
  }
  if (A->isDeref() && A->derefSize() < 8)
    I = I.meet(Interval(
        0, static_cast<int64_t>((uint64_t(1) << (A->derefSize() * 8)) - 1)));
  if (Extended && A->isOp()) {
    // Structural width bounds compilers produce for index arithmetic.
    // Masking with a nonneg constant bounds by the mask; an unsigned right
    // shift by k leaves at most W-k significant bits.
    if (A->opcode() == Opcode::And) {
      for (unsigned Op = 0; Op < 2; ++Op)
        if (A->operand(Op)->isConst()) {
          uint64_t Mask = A->operand(Op)->constVal();
          if (Mask <= static_cast<uint64_t>(INT64_MAX))
            I = I.meet(Interval(0, static_cast<int64_t>(Mask)));
        }
    } else if (A->opcode() == Opcode::LShr && A->operand(1)->isConst()) {
      uint64_t K = A->operand(1)->constVal();
      unsigned W = A->width();
      if (K >= W)
        I = I.meet(Interval(0, 0));
      else if (W - K < 64)
        I = I.meet(
            Interval(0, static_cast<int64_t>((uint64_t(1) << (W - K)) - 1)));
    }
  }
  for (const RangeClause &C : Ranges)
    if (C.E == A)
      I = I.meet(clauseInterval(C.Op, C.Bound));
  return I;
}

Interval Pred::intervalOf(const Expr *E) const {
  if (E->isConst())
    return Interval(expr::signExtend(E->constVal(), E->width()));

  // Direct clauses on E itself.
  Interval Direct = atomInterval(E, /*Extended=*/false);

  // Linear decomposition.
  expr::LinearForm LF = expr::linearize(E);
  Interval Lin(LF.Constant);
  for (auto &[Coeff, Atom] : LF.Terms) {
    if (Lin.isTop())
      break;
    Lin = Lin.add(atomInterval(Atom, /*Extended=*/false).mul(Coeff));
  }
  return Direct.meet(Lin);
}

Interval Pred::intervalOfForm(const expr::LinearForm &LF) const {
  Interval Lin(LF.Constant);
  for (auto &[Coeff, Atom] : LF.Terms) {
    if (Lin.isTop())
      break;
    Lin = Lin.add(atomInterval(Atom, /*Extended=*/true).mul(Coeff));
  }
  // Generalized direct-clause matching: a range clause whose LHS
  // linearizes to the same term list constrains the form directly — from
  // E = Terms + cE and LF = Terms + cL follows LF = E + (cL - cE). With
  // cE = 0 and a single term this is exactly intervalOf's "clause keyed on
  // this expression" check; the general case also catches clauses recorded
  // on a displaced form of the same address difference.
  if (!LF.Terms.empty()) {
    for (const RangeClause &C : Ranges) {
      if (Lin.isPoint())
        break;
      Interval CI = clauseInterval(C.Op, C.Bound);
      if (CI.isTop())
        continue;
      expr::LinearForm CF = expr::linearize(C.E);
      if (CF.Terms == LF.Terms) {
        // Wrapping displacement (C++20 two's complement); Interval::add
        // returns top on any possible re-overflow.
        int64_t Delta = static_cast<int64_t>(
            static_cast<uint64_t>(LF.Constant) -
            static_cast<uint64_t>(CF.Constant));
        Lin = Lin.meet(CI.add(Interval(Delta)));
      }
    }
  }
  return Lin;
}

bool Pred::hasEqRange() const {
  for (const RangeClause &C : Ranges)
    if (C.Op == RelOp::Eq)
      return true;
  return false;
}

std::optional<uint64_t> Pred::unsignedUpperBound(const Expr *E) const {
  if (E->isConst())
    return E->constVal();
  std::optional<uint64_t> Best;
  auto Consider = [&](uint64_t B) {
    if (!Best || B < *Best)
      Best = B;
  };
  auto Scan = [&](const Expr *X) {
    for (const RangeClause &C : Ranges) {
      if (C.E != X)
        continue;
      switch (C.Op) {
      case RelOp::Eq:
        Consider(C.Bound);
        break;
      case RelOp::ULt:
        if (C.Bound != 0)
          Consider(C.Bound - 1);
        break;
      case RelOp::ULe:
        Consider(C.Bound);
        break;
      default:
        break;
      }
    }
  };
  // A zero-extension preserves the unsigned value: clauses on the inner
  // operand bound the extension too (the jump-table index is typically a
  // 32-bit comparison zero-extended into the 64-bit address).
  for (const Expr *X = E;;) {
    Scan(X);
    if (X->isOp() && X->opcode() == Opcode::ZExt)
      X = X->operand(0);
    else
      break;
  }
  if (!Best) {
    // Fall back to the signed interval if it proves non-negativity.
    Interval I = intervalOf(E);
    if (!I.isTop() && !I.isEmpty() && I.lo() >= 0)
      Best = static_cast<uint64_t>(I.hi());
  }
  return Best;
}

std::vector<uint64_t> Pred::witnessSeeds(const Expr *Var) const {
  std::vector<uint64_t> Out;
  if (!Var)
    return Out;

  std::function<bool(const Expr *)> Mentions = [&](const Expr *E) {
    if (E == Var)
      return true;
    for (const Expr *O : E->operands())
      if (Mentions(O))
        return true;
    return false;
  };

  // Valuation that maps Var to X and every other variable to 0. Deref
  // leaves have no memory oracle here, so affine probing fails (and falls
  // back to raw boundaries) whenever the clause reads memory.
  auto At = [&](const Expr *E, uint64_t X) -> std::optional<uint64_t> {
    uint32_t Id = Var->varId();
    return expr::evalExpr(
        E, [&](uint32_t VId) -> uint64_t { return VId == Id ? X : 0; });
  };

  for (const RangeClause &C : Ranges) {
    if (!Mentions(C.E))
      continue;
    uint64_t Targets[3] = {C.Bound - 1, C.Bound, C.Bound + 1};
    bool Solved = false;
    if (Var->isVar()) {
      auto F0 = At(C.E, 0), F1 = At(C.E, 1);
      if (F0 && F1) {
        uint64_t D = *F1 - *F0; // wrapping slope of the affine probe
        if (D != 0) {
          // Solve D·x ≡ Delta (mod 2^64): divide out the power of two,
          // then multiply by the odd part's inverse (Newton iteration).
          Solved = true;
          int Tz = std::countr_zero(D);
          uint64_t Odd = D >> Tz, Inv = Odd;
          for (int It = 0; It < 5; ++It)
            Inv *= 2 - Odd * Inv;
          for (uint64_t T : Targets) {
            uint64_t Delta = T - *F0;
            if (Tz == 0 || std::countr_zero(Delta) >= Tz || Delta == 0)
              Out.push_back((Delta >> Tz) * Inv);
          }
        }
      }
    }
    if (!Solved)
      for (uint64_t T : Targets)
        Out.push_back(T);
  }

  Interval I = intervalOf(Var);
  if (!I.isTop() && !I.isEmpty()) {
    Out.push_back(static_cast<uint64_t>(I.lo()));
    Out.push_back(static_cast<uint64_t>(I.hi()));
    Out.push_back(static_cast<uint64_t>(I.lo()) - 1);
    Out.push_back(static_cast<uint64_t>(I.hi()) + 1);
  }

  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

// --- join ---------------------------------------------------------------------

Pred Pred::join(ExprContext &Ctx, const Pred &A, const Pred &B, bool Widen,
                const std::vector<const Expr *> *Protect) {
  if (A.Bottom)
    return B;
  if (B.Bottom)
    return A;

  Pred J;

  // Registers: keep agreeing clauses, range-abstract disagreeing ones.
  for (unsigned I = 0; I < x86::NumGPRs; ++I) {
    const Expr *VA = A.Regs[I], *VB = B.Regs[I];
    if (VA == VB) {
      J.Regs[I] = VA;
      continue;
    }
    const Expr *F = Ctx.mkFresh("j_" + x86::regName(x86::regFromNum(I)));
    J.Regs[I] = F;
    if (!Widen) {
      Interval IA = A.intervalOf(VA), IB = B.intervalOf(VB);
      Interval U = IA.join(IB);
      if (!U.isTop() && !U.isEmpty()) {
        if (U.lo() != INT64_MIN)
          J.addRange(F, RelOp::SGe, static_cast<uint64_t>(U.lo()));
        if (U.hi() != INT64_MAX)
          J.addRange(F, RelOp::SLe, static_cast<uint64_t>(U.hi()));
      }
    }
  }

  // Flags: must agree exactly.
  if (A.Flags == B.Flags)
    J.Flags = A.Flags;

  // Memory clauses: keep cells both sides agree on.
  for (const MemCell &CA : A.Cells) {
    const MemCell *CB = B.findCell(CA.Addr, CA.Size);
    if (CB && CB->Val == CA.Val)
      J.Cells.push_back(CA);
  }

  // Range clauses: keep clauses identical in both; otherwise interval-join
  // per expression.
  if (!Widen) {
    for (const RangeClause &C : A.Ranges) {
      bool InB = std::find(B.Ranges.begin(), B.Ranges.end(), C) !=
                 B.Ranges.end();
      if (InB) {
        J.addRange(C.E, C.Op, C.Bound);
        continue;
      }
      Interval U = A.intervalOf(C.E).join(B.intervalOf(C.E));
      if (!U.isTop() && !U.isEmpty()) {
        if (U.lo() != INT64_MIN)
          J.addRange(C.E, RelOp::SGe, static_cast<uint64_t>(U.lo()));
        if (U.hi() != INT64_MAX)
          J.addRange(C.E, RelOp::SLe, static_cast<uint64_t>(U.hi()));
      }
    }
  } else if (Protect) {
    // Widening normally drops every range clause. The VSA retry loop asks
    // for specific expressions (unbounded jump-table indices) to keep
    // their interval-join bound anyway, so the bounding `cmp`/`ja` guard
    // of a table reached through a widened loop is not erased.
    for (const Expr *E : *Protect) {
      Interval U = A.intervalOf(E).join(B.intervalOf(E));
      if (!U.isTop() && !U.isEmpty()) {
        if (U.lo() != INT64_MIN)
          J.addRange(E, RelOp::SGe, static_cast<uint64_t>(U.lo()));
        if (U.hi() != INT64_MAX)
          J.addRange(E, RelOp::SLe, static_cast<uint64_t>(U.hi()));
      }
    }
  }

  J.bumpVersion();
  return J;
}

// --- partial order --------------------------------------------------------------

namespace {

/// Matching-based implication: try to find a substitution of B-side Fresh
/// variables making EB equal to EA.
struct Matcher {
  std::unordered_map<const Expr *, const Expr *> Binding;

  bool match(const Expr *EB, const Expr *EA) {
    if (EB == EA)
      return true;
    if (EB->isVar() && EB->hasFreshLeaf()) {
      auto It = Binding.find(EB);
      if (It != Binding.end())
        return It->second == EA;
      if (EB->width() != EA->width())
        return false;
      Binding.emplace(EB, EA);
      return true;
    }
    if (EB->kind() != EA->kind() || EB->width() != EA->width())
      return false;
    switch (EB->kind()) {
    case ExprKind::Const:
    case ExprKind::Var:
      return false; // pointer equality already failed
    case ExprKind::Deref:
      return EB->derefSize() == EA->derefSize() &&
             match(EB->derefAddr(), EA->derefAddr());
    case ExprKind::Op: {
      if (EB->opcode() != EA->opcode() ||
          EB->operands().size() != EA->operands().size())
        return false;
      for (size_t I = 0; I < EB->operands().size(); ++I)
        if (!match(EB->operand(I), EA->operand(I)))
          return false;
      return true;
    }
    }
    return false;
  }

  /// Does EB contain a variable that this matcher has bound (i.e. a
  /// B-side-only fresh variable standing for an A expression)? Fresh
  /// leaves *shared* between both states (external-call results, havoc
  /// values created before the join) are not bound and can be evaluated
  /// in A directly.
  bool containsBoundVar(const Expr *EB) const {
    if (EB->isVar())
      return Binding.count(EB) != 0;
    if (!EB->hasFreshLeaf())
      return false;
    if (EB->isOp() || EB->isDeref())
      for (const Expr *Op : EB->operands())
        if (containsBoundVar(Op))
          return true;
    return false;
  }

  /// Signed interval of EB after substitution, evaluated in A.
  Interval intervalInA(const Pred &A, const Expr *EB) {
    if (EB->isConst())
      return Interval(expr::signExtend(EB->constVal(), EB->width()));
    if (EB->isVar()) {
      auto It = Binding.find(EB);
      return A.intervalOf(It != Binding.end() ? It->second : EB);
    }
    // Bound-variable-free expressions are shared with A verbatim: consult
    // A's clauses on the whole expression first (they may be attached to
    // the compound term, not its parts).
    if (!containsBoundVar(EB))
      return A.intervalOf(EB);
    if (EB->isOp()) {
      switch (EB->opcode()) {
      case Opcode::Add:
        return intervalInA(A, EB->operand(0))
            .add(intervalInA(A, EB->operand(1)));
      case Opcode::Sub:
        return intervalInA(A, EB->operand(0))
            .sub(intervalInA(A, EB->operand(1)));
      case Opcode::Mul:
        if (EB->operand(1)->isConst())
          return intervalInA(A, EB->operand(0))
              .mul(expr::signExtend(EB->operand(1)->constVal(),
                                    EB->width()));
        break;
      default:
        break;
      }
    }
    if (!containsBoundVar(EB))
      return A.intervalOf(EB);
    return Interval::top();
  }
};

} // namespace

bool Pred::leq(const Pred &A, const Pred &B) {
  if (A.Bottom)
    return true;
  if (B.Bottom)
    return false;

  Matcher M;
  for (unsigned I = 0; I < x86::NumGPRs; ++I)
    if (!M.match(B.Regs[I], A.Regs[I]))
      return false;

  if (B.Flags.K != FlagState::Kind::Unknown) {
    if (A.Flags.K != B.Flags.K || A.Flags.Width != B.Flags.Width)
      return false;
    if (!M.match(B.Flags.L, A.Flags.L))
      return false;
    if (B.Flags.R && (!A.Flags.R || !M.match(B.Flags.R, A.Flags.R)))
      return false;
  }

  for (const MemCell &CB : B.Cells) {
    bool Found = false;
    for (const MemCell &CA : A.Cells) {
      if (CA.Size != CB.Size)
        continue;
      Matcher Saved = M; // backtrack on failed candidate
      if (M.match(CB.Addr, CA.Addr) && M.match(CB.Val, CA.Val)) {
        Found = true;
        break;
      }
      M = Saved;
    }
    if (!Found)
      return false;
  }

  for (const RangeClause &C : B.Ranges) {
    Interval I = M.intervalInA(A, C.E);
    Interval Implied = clauseInterval(C.Op, C.Bound);
    bool OK = false;
    if (!I.isEmpty() && !I.isTop() && !Implied.isTop() &&
        Implied.contains(I)) {
      // For unsigned clauses the interval argument needs non-negativity,
      // which clauseInterval's [0, B] form already enforces. A top Implied
      // means the clause has no signed-interval rendering (UGe/UGt, large
      // ULt bounds): containment is then vacuous, not an entailment — the
      // clause must instead match identically below. (Found by the fuzzing
      // campaign: a jb fall-through clause survived a covering check
      // against a state from the taken path.)
      OK = true;
    }
    if (!OK && C.Op == RelOp::Ne && !I.isEmpty() &&
        !I.contains(static_cast<int64_t>(C.Bound)))
      OK = true;
    if (!OK && !M.containsBoundVar(C.E)) {
      // Identical clause present in A: sound only when C.E is shared
      // verbatim between both states. If the Matcher bound a leaf of C.E
      // to a different A expression, the pointer-equal clause in A talks
      // about the *old* value, not the one B's clause constrains — e.g. a
      // loop back-edge where rcx maps to j_rcx − 8 but A still carries
      // j_rcx-range clauses from the previous iteration. (Found by the
      // fuzzing campaign: a decrementing loop kept a stale [0, 2^32−1]
      // bound on its join variable and dropped the taken jl successor.)
      for (const RangeClause &CA : A.Ranges)
        if (CA.E == C.E && CA.Op == C.Op && CA.Bound == C.Bound) {
          OK = true;
          break;
        }
    }
    if (!OK)
      return false;
  }

  return true;
}

std::optional<Pred::LeqFailure> Pred::leqExplain(const ExprContext &Ctx,
                                                 const Pred &A,
                                                 const Pred &B) {
  if (A.Bottom)
    return std::nullopt;
  if (B.Bottom)
    return LeqFailure{-1, "⊥", "target invariant is unreachable (bottom)"};

  // The walk below must mirror leq() clause for clause — a shared Matcher
  // accumulates bindings across clauses, so probing clauses in isolation
  // would report different (and sometimes spurious) failures.
  Matcher M;
  for (unsigned I = 0; I < x86::NumGPRs; ++I)
    if (!M.match(B.Regs[I], A.Regs[I])) {
      x86::Reg R = x86::regFromNum(I);
      return LeqFailure{
          static_cast<int>(I),
          x86::regName(R) + " == " + B.Regs[I]->str(Ctx),
          "state has " + x86::regName(R) + " == " + A.Regs[I]->str(Ctx)};
    }

  int Id = static_cast<int>(x86::NumGPRs); // 16: the flag clause
  if (B.Flags.K != FlagState::Kind::Unknown) {
    auto FlagsStr = [&](const FlagState &F) {
      std::string S = "flags(" + std::string(F.K == FlagState::Kind::Cmp ? "cmp"
                                             : F.K == FlagState::Kind::Test
                                                 ? "test"
                                             : F.K == FlagState::Kind::Res
                                                 ? "res"
                                                 : "zero-of");
      S += F.L ? " " + F.L->str(Ctx) : std::string();
      if (F.R)
        S += ", " + F.R->str(Ctx);
      return S + ")/" + std::to_string(F.Width);
    };
    bool OK = A.Flags.K == B.Flags.K && A.Flags.Width == B.Flags.Width &&
              M.match(B.Flags.L, A.Flags.L) &&
              (!B.Flags.R || (A.Flags.R && M.match(B.Flags.R, A.Flags.R)));
    if (!OK)
      return LeqFailure{Id, FlagsStr(B.Flags),
                        A.Flags.K == FlagState::Kind::Unknown
                            ? "state has no flag knowledge"
                            : "state has " + FlagsStr(A.Flags)};
  }
  ++Id;

  for (const MemCell &CB : B.Cells) {
    bool Found = false;
    for (const MemCell &CA : A.Cells) {
      if (CA.Size != CB.Size)
        continue;
      Matcher Saved = M;
      if (M.match(CB.Addr, CA.Addr) && M.match(CB.Val, CA.Val)) {
        Found = true;
        break;
      }
      M = Saved;
    }
    if (!Found)
      return LeqFailure{Id,
                        "*[" + CB.Addr->str(Ctx) + "," +
                            std::to_string(CB.Size) +
                            "] == " + CB.Val->str(Ctx),
                        "no matching memory clause in the state"};
    ++Id;
  }

  for (const RangeClause &C : B.Ranges) {
    Interval I = M.intervalInA(A, C.E);
    Interval Implied = clauseInterval(C.Op, C.Bound);
    bool OK = !I.isEmpty() && !I.isTop() && !Implied.isTop() &&
              Implied.contains(I); // mirror leq(): top Implied is vacuous
    if (!OK && C.Op == RelOp::Ne && !I.isEmpty() &&
        !I.contains(static_cast<int64_t>(C.Bound)))
      OK = true;
    if (!OK && !M.containsBoundVar(C.E)) // mirror leq(): bound ⇒ old value
      for (const RangeClause &CA : A.Ranges)
        if (CA.E == C.E && CA.Op == C.Op && CA.Bound == C.Bound) {
          OK = true;
          break;
        }
    if (!OK) {
      std::string Have =
          I.isTop() ? std::string("no interval for it")
                    : "its interval in the state is [" +
                          std::to_string(I.lo()) + ", " +
                          std::to_string(I.hi()) + "]";
      return LeqFailure{Id,
                        C.E->str(Ctx) + " " + relOpName(C.Op) + " " +
                            std::to_string(C.Bound),
                        Have};
    }
    ++Id;
  }

  return std::nullopt;
}

// --- semantic satisfaction -------------------------------------------------------

bool Pred::holds(const expr::VarValuation &Vars,
                 const expr::MemOracle &InitMem,
                 const std::array<uint64_t, x86::NumGPRs> &RegVals,
                 const expr::MemOracle &CurMem) const {
  if (Bottom)
    return false;
  for (unsigned I = 0; I < x86::NumGPRs; ++I) {
    auto V = expr::evalExpr(Regs[I], Vars, InitMem);
    if (!V || *V != RegVals[I])
      return false;
  }
  for (const MemCell &C : Cells) {
    auto A = expr::evalExpr(C.Addr, Vars, InitMem);
    auto V = expr::evalExpr(C.Val, Vars, InitMem);
    if (!A || !V)
      return false;
    if (CurMem(*A, C.Size) != expr::maskToWidth(*V, C.Size * 8))
      return false;
  }
  for (const RangeClause &C : Ranges) {
    auto V = expr::evalExpr(C.E, Vars, InitMem);
    if (!V)
      return false;
    int64_t S = static_cast<int64_t>(*V);
    int64_t SB = static_cast<int64_t>(C.Bound);
    bool OK;
    switch (C.Op) {
    case RelOp::Eq:
      OK = *V == C.Bound;
      break;
    case RelOp::Ne:
      OK = *V != C.Bound;
      break;
    case RelOp::ULt:
      OK = *V < C.Bound;
      break;
    case RelOp::ULe:
      OK = *V <= C.Bound;
      break;
    case RelOp::UGe:
      OK = *V >= C.Bound;
      break;
    case RelOp::UGt:
      OK = *V > C.Bound;
      break;
    case RelOp::SLt:
      OK = S < SB;
      break;
    case RelOp::SLe:
      OK = S <= SB;
      break;
    case RelOp::SGe:
      OK = S >= SB;
      break;
    case RelOp::SGt:
      OK = S > SB;
      break;
    }
    if (!OK)
      return false;
  }
  return true;
}

std::string Pred::str(const ExprContext &Ctx) const {
  if (Bottom)
    return "⊥";
  std::string S;
  for (unsigned I = 0; I < x86::NumGPRs; ++I) {
    const Expr *V = Regs[I];
    if (!V)
      continue;
    // Skip the trivial "reg == reg0" clauses for readability.
    if (V->isVar() &&
        Ctx.varInfo(V->varId()).Name ==
            x86::regName(x86::regFromNum(I)) + "0")
      continue;
    S += x86::regName(x86::regFromNum(I)) + " == " + V->str(Ctx) + "; ";
  }
  for (const MemCell &C : Cells)
    S += "*[" + C.Addr->str(Ctx) + "," + std::to_string(C.Size) +
         "] == " + C.Val->str(Ctx) + "; ";
  for (const RangeClause &C : Ranges)
    S += C.E->str(Ctx) + " " + relOpName(C.Op) + " " +
         std::to_string(C.Bound) + "; ";
  return S;
}

} // namespace hglift::pred
