//===- Pred.h - Symbolic predicates (§3.1) ---------------------*- C++ -*-===//
//
// A predicate P is a set of clauses E □ C. We store it in solved form:
//
//   * one clause  reg == C  per general-purpose register (the map Regs);
//     a register whose value is a Fresh variable is unconstrained, which
//     is how "the clause was dropped" is represented soundly;
//   * memory clauses  *[C_addr, n] == C_val  (the list Cells);
//   * a flag abstraction: rather than six separate flag clauses we record
//     the operation that last set the flags (cmp / test / an ALU result),
//     from which each condition code is derived on demand;
//   * residual range clauses  C □ k  with k a numeric constant (the list
//     Ranges) — these carry jump-table bounds like "eax ≤ 0xc3" in §2 and
//     the results of joining unequal constants (Example 3.4).
//
// The join (Definition 3.3 / Example 3.4) keeps clauses both sides agree
// on, widens disagreeing constants to ranges via interval abstraction, and
// drops everything else by substituting Fresh variables — only ever
// weakening, as Definition 3.15 requires.
//
// Every Pred carries a *version stamp*: a process-wide monotone counter
// value re-assigned by every mutating operation (copies keep their source's
// stamp). Two Preds with equal stamps are guaranteed content-identical, so
// the stamp serves as an exact O(1) identity for caching — the relation
// solver keys its query cache on it, and mutating a predicate implicitly
// invalidates every cache entry derived from its old state (the stale key
// can never be produced again).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_PRED_PRED_H
#define HGLIFT_PRED_PRED_H

#include "expr/Eval.h"
#include "expr/ExprContext.h"
#include "support/Interval.h"
#include "x86/Reg.h"

#include <array>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace hglift::pred {

using expr::Expr;
using expr::ExprContext;

/// Relations for range clauses: E □ k. Eq is included for completeness but
/// equalities normally live in the Regs/Cells maps.
enum class RelOp : uint8_t { Eq, Ne, ULt, ULe, UGe, UGt, SLt, SLe, SGe, SGt };

const char *relOpName(RelOp Op);

struct RangeClause {
  const Expr *E;
  RelOp Op;
  uint64_t Bound;

  bool operator==(const RangeClause &O) const = default;
};

/// A memory clause *[Addr, Size] == Val.
struct MemCell {
  const Expr *Addr;
  uint32_t Size;
  const Expr *Val;

  bool operator==(const MemCell &O) const = default;
};

/// Abstraction of RFLAGS: the operation that last defined them.
struct FlagState {
  enum class Kind : uint8_t {
    Unknown, ///< nothing known (initial state, or flag-clobbering op)
    Cmp,     ///< flags of (L - R)
    Test,    ///< flags of (L & R)
    Res,     ///< only ZF/SF known, from result L (e.g. after add/and/shl)
    ZeroOf,  ///< only ZF known: ZF = (L == 0) (e.g. after bsf/bsr)
  };
  Kind K = Kind::Unknown;
  const Expr *L = nullptr;
  const Expr *R = nullptr;
  uint8_t Width = 64;

  bool operator==(const FlagState &O) const = default;
};

class Pred {
public:
  Pred() { Regs.fill(nullptr); }

  /// The initial predicate P0 of a function (Figure 1): every register
  /// holds its InitReg variable, rsp holds the StackBase variable rsp0,
  /// and *[rsp0, 8] == a_r (the return-address symbol RetSymTop, which
  /// defaults to a RetAddr variable).
  static Pred entry(ExprContext &Ctx, const Expr *RetSymTop = nullptr);

  bool isBottom() const { return Bottom; }
  void setBottom() {
    Bottom = true;
    bumpVersion();
  }

  // --- identity / caching support -----------------------------------------

  /// Monotone version stamp: re-assigned (from a process-wide counter) by
  /// every mutating member function. Equal stamps imply identical content;
  /// a mutation makes the old stamp unreproducible, which is what
  /// invalidates version-keyed caches.
  uint64_t version() const { return Version; }

  /// Structural content digest: mixes the interned-expression hashes of
  /// every clause. Memoized per version stamp (not synchronized — one Pred,
  /// one thread, like the rest of this class).
  uint64_t digest() const;

  /// Content equality (clause-for-clause, via interned pointers); the
  /// version stamp and digest memo are *not* compared. Only meaningful for
  /// predicates from the same ExprContext.
  bool operator==(const Pred &O) const {
    return Bottom == O.Bottom && Regs == O.Regs && Flags == O.Flags &&
           Cells == O.Cells && Ranges == O.Ranges;
  }

  // --- registers -----------------------------------------------------------

  /// Full 64-bit value of R.
  const Expr *reg64(x86::Reg R) const { return Regs[x86::regNum(R)]; }
  void setReg64(x86::Reg R, const Expr *V) {
    Regs[x86::regNum(R)] = V;
    bumpVersion();
  }

  /// Value of R viewed at SizeBytes (1/2/4/8), honoring high-byte access.
  const Expr *readReg(ExprContext &Ctx, x86::Reg R, unsigned SizeBytes,
                      bool HighByte = false) const;

  /// x86 write semantics: 64-bit replaces, 32-bit zero-extends, 16/8-bit
  /// merge into the old value.
  void writeReg(ExprContext &Ctx, x86::Reg R, unsigned SizeBytes,
                bool HighByte, const Expr *V);

  // --- flags ---------------------------------------------------------------

  const FlagState &flags() const { return Flags; }
  void setFlagsCmp(const Expr *L, const Expr *R, unsigned Width);
  void setFlagsTest(const Expr *L, const Expr *R, unsigned Width);
  void setFlagsRes(const Expr *Res, unsigned Width);
  void setFlagsZeroOf(const Expr *L, unsigned Width);
  void clearFlags() {
    Flags = FlagState{};
    bumpVersion();
  }

  /// The 1-bit expression for condition CC under the current flag state, or
  /// nullptr if unknown (e.g. overflow/parity conditions after Res).
  const Expr *condExpr(ExprContext &Ctx, x86::Cond CC) const;

  // --- memory clauses ------------------------------------------------------

  const std::vector<MemCell> &cells() const { return Cells; }
  /// Cell with syntactically identical address and size, or nullptr.
  const MemCell *findCell(const Expr *Addr, uint32_t Size) const;
  /// Insert or replace the cell at (Addr, Size).
  void setCell(const Expr *Addr, uint32_t Size, const Expr *Val);
  void removeCell(const Expr *Addr, uint32_t Size);
  /// Remove cells for which Keep returns false.
  void filterCells(const std::function<bool(const MemCell &)> &Keep);

  // --- range clauses -------------------------------------------------------

  const std::vector<RangeClause> &ranges() const { return Ranges; }
  void addRange(const Expr *E, RelOp Op, uint64_t Bound);
  void clearRangesFor(const Expr *E);

  /// Signed interval for E implied by this predicate (constants fold;
  /// range clauses on E and on its linear atoms are consulted).
  Interval intervalOf(const Expr *E) const;

  /// Signed interval for the value of a linear form: Constant + Σ
  /// Coeff·atom. This is the relation solver's tier-1 entry point — it
  /// consumes an already-linearized address difference (no Sub expression
  /// needs to be interned) and reasons slightly more structurally than
  /// intervalOf: and-mask and shift-by-constant width bounds, plus range
  /// clauses whose LHS linearizes to the same term list as LF (which
  /// subsumes the "clause keyed on this exact expression" check).
  /// intervalOf itself is deliberately left alone: it feeds join/widening,
  /// where extra precision would change lift semantics rather than just
  /// discharge more relation queries.
  Interval intervalOfForm(const expr::LinearForm &LF) const;

  /// Any Eq range clause present? Consulted by the solver's tier-2
  /// admission filter: equality-pinned predicates are the ones Z3 can
  /// refute outright (vacuous paths), so they are never filtered.
  bool hasEqRange() const;

  /// Unsigned upper bound for E if one is implied (the jump-table case:
  /// "eax ≤ 0xc3" yields 0xc3). Sound only together with the lower bound 0
  /// from ULt/ULe clauses.
  std::optional<uint64_t> unsignedUpperBound(const Expr *E) const;

  /// Candidate values of Var that straddle this predicate's range-clause
  /// boundaries: for every range clause whose LHS mentions Var, the values
  /// of Var that put the clause expression at Bound-1 / Bound / Bound+1
  /// (solved exactly when the clause is affine in Var — probed at Var=0 and
  /// Var=1 — raw boundary values otherwise), plus the endpoints of
  /// intervalOf(Var). These are the directed seeds of the incorrectness-
  /// witness search: a violated E □ k clause is falsified at or next to its
  /// boundary, not in the middle of the admitted interval. Sorted, deduped.
  std::vector<uint64_t> witnessSeeds(const Expr *Var) const;

  // --- join / order (Definition 3.3) --------------------------------------

  /// Least upper bound. Fresh variables introduced for dropped clauses are
  /// allocated from Ctx. If Widen is set, disagreeing constants are dropped
  /// instead of range-abstracted (used after repeated joins at the same
  /// vertex to force termination). Protect (optional, VSA retry loop in
  /// Lifter.cpp) lists expressions whose interval-join bound is kept even
  /// under widening, so a jump-table guard clause survives the loop join;
  /// the lifter bounds how long it passes Protect, preserving termination.
  static Pred join(ExprContext &Ctx, const Pred &A, const Pred &B,
                   bool Widen = false,
                   const std::vector<const Expr *> *Protect = nullptr);

  /// Partial order: does A imply B (modulo renaming of B's Fresh
  /// variables)? This is the ⊑ test of Algorithm 1 line 4 and also the
  /// entailment check of the Step-2 Hoare-triple checker.
  static bool leq(const Pred &A, const Pred &B);

  /// One failing clause of a leq(A, B) check, for diagnostics. ClauseId
  /// numbers B's clauses: 0–15 the registers (by register number), 16 the
  /// flag abstraction, then memory cells, then range clauses, in order.
  struct LeqFailure {
    int ClauseId = -1;
    std::string Clause; ///< the B clause that failed, rendered
    std::string Why;    ///< why A does not entail it
  };

  /// Cold-path mirror of leq(): repeats the same matching walk (same
  /// Matcher semantics, same clause order) and reports the first clause of
  /// B that A fails to entail. Returns nullopt when leq(A, B) holds. Only
  /// called after a failed leq, so it favors clarity over speed.
  static std::optional<LeqFailure> leqExplain(const ExprContext &Ctx,
                                              const Pred &A, const Pred &B);

  /// Semantic satisfaction s ⊢ P (Definition 4.4), for the property tests.
  /// Vars values the symbolic variables and InitMem is the *initial* memory
  /// of the function (Deref leaves denote initial contents); RegVals and
  /// CurMem describe the concrete state s being tested.
  bool holds(const expr::VarValuation &Vars, const expr::MemOracle &InitMem,
             const std::array<uint64_t, x86::NumGPRs> &RegVals,
             const expr::MemOracle &CurMem) const;

  std::string str(const ExprContext &Ctx) const;

private:
  /// Take a fresh stamp from the process-wide counter. Called by every
  /// mutator; cheap (one relaxed atomic increment).
  void bumpVersion();

  /// Structural + clause-implied bounds for one linear atom. Extended adds
  /// the and-mask / shift bounds used by intervalOfForm only.
  Interval atomInterval(const Expr *A, bool Extended) const;

  bool Bottom = false;
  std::array<const Expr *, x86::NumGPRs> Regs;
  FlagState Flags;
  std::vector<MemCell> Cells;
  std::vector<RangeClause> Ranges;
  /// See version(). 0 = the shared stamp of all default-constructed
  /// (empty) predicates.
  uint64_t Version = 0;
  /// digest() memo, keyed by the version stamp at computation time.
  mutable uint64_t DigestVersion = ~uint64_t(0);
  mutable uint64_t DigestValue = 0;
};

} // namespace hglift::pred

#endif // HGLIFT_PRED_PRED_H
