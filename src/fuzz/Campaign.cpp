//===- Campaign.cpp - Seeded soundness fuzzing campaigns ------------------===//

#include "fuzz/Campaign.h"

#include "api/Hglift.h"
#include "corpus/Programs.h"
#include "diag/Json.h"
#include "fuzz/Sidecar.h"
#include "elf/ElfReader.h"
#include "export/HoareChecker.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace hglift::fuzz {

namespace {

constexpr uint64_t Golden = 0x9e3779b97f4a7c15ull;

/// FNV-1a, for deriving per-mutant probe seed streams from names (stable
/// under registry reordering).
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : S) {
    H ^= static_cast<uint8_t>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

const char *scopeName(MutantScope S) {
  return S == MutantScope::LiftOnly ? "lift-only" : "both";
}

Subject genSubject(unsigned Index, uint64_t RunSeed,
                   const FuzzOptions &Opts) {
  Subject S;
  Rng G(RunSeed);
  corpus::GenOptions GO;
  GO.Seed = S.GenSeed = G.next();
  GO.NumFuncs = 2 + static_cast<unsigned>(G.below(3));
  unsigned MaxI = std::max(16u, Opts.MaxInsns);
  GO.TargetInstrs = 12 + static_cast<unsigned>(G.below(MaxI - 12 + 1));
  GO.JumpTablePct = 30;
  GO.ExternalPct = 40;
  GO.CallbackPct = 10;
  GO.UnresJumpPct = 10;
  GO.Name = "fuzz_" + std::to_string(Index);
  S.Library = G.chance(1, 2);
  S.OracleSeed = G.next();
  S.Name = GO.Name;
  S.BB = S.Library ? corpus::randomLibrary(GO) : corpus::randomBinary(GO);
  return S;
}

/// One pass of the full pipeline: Step 1, Step 2, concrete oracle. The
/// mutant (when given) is installed for Step 1 and — for Both-scope
/// mutants, which model a bug in the shared semantics — Step 2; the
/// oracle always judges with clean semantics.
struct PipelineOut {
  std::string Outcome;
  size_t Functions = 0, LiftedFns = 0, Instructions = 0;
  size_t Theorems = 0, Proven = 0;
  std::vector<std::string> CheckFailures;
  OracleResult Oracle;
  uint64_t FirstFailFn = 0, FirstFailAddr = 0;
};

PipelineOut runPipeline(const elf::BinaryImage &Img, bool Library,
                        const Mutant *M, uint64_t OracleSeed,
                        unsigned OracleRuns) {
  PipelineOut P;
  Options SO;
  SO.Library = Library;
  Session S(Img, SO);

  std::optional<MutantInstall> Inst;
  if (M)
    Inst.emplace(*M);
  const hg::BinaryResult &R = S.lift();
  if (M && M->Scope == MutantScope::LiftOnly)
    Inst.reset(); // Step 2 re-checks with the clean semantics

  const exporter::CheckResult &C = S.check();
  Inst.reset(); // the oracle is always the clean-semantics judge

  P.Outcome = hg::liftOutcomeName(R.Outcome);
  P.Functions = R.Functions.size();
  for (const hg::FunctionResult &F : R.Functions)
    if (F.Outcome == hg::LiftOutcome::Lifted) {
      ++P.LiftedFns;
      P.Instructions += F.numInstructions();
    }
  P.Theorems = C.Theorems;
  P.Proven = C.Proven;
  P.CheckFailures = C.Failures;
  if (!C.Diags.empty()) {
    P.FirstFailFn = C.Diags.front().Prov.FunctionEntry;
    P.FirstFailAddr = C.Diags.front().Prov.Addr;
  }

  P.Oracle = runOracle(Img, R, OracleSeed, static_cast<int>(OracleRuns));
  if (P.CheckFailures.empty() && !P.Oracle.Violations.empty()) {
    P.FirstFailFn = P.Oracle.Violations.front().Function;
    P.FirstFailAddr = P.Oracle.Violations.front().Addr;
  }
  return P;
}

RunRecord fuzzOne(unsigned Index, uint64_t RunSeed, const FuzzOptions &Opts,
                  const Mutant *M) {
  RunRecord R;
  R.Index = Index;
  R.RunSeed = RunSeed;
  Subject S = genSubject(Index, RunSeed, Opts);
  R.GenSeed = S.GenSeed;
  R.OracleSeed = S.OracleSeed;
  R.Name = S.Name;
  R.Library = S.Library;
  if (!S.BB) {
    R.Outcome = "build-failed";
    return R;
  }
  PipelineOut P =
      runPipeline(S.BB->Img, S.Library, M, S.OracleSeed, Opts.OracleRuns);
  R.Outcome = P.Outcome;
  R.Functions = P.Functions;
  R.LiftedFns = P.LiftedFns;
  R.Instructions = P.Instructions;
  R.Theorems = P.Theorems;
  R.Proven = P.Proven;
  R.CheckFailures = P.CheckFailures;
  for (const OracleViolation &V : P.Oracle.Violations)
    R.OracleViolations.push_back("fn " + hexStr(V.Function) + ": " +
                                 V.Message);
  R.OracleWalks = P.Oracle.Runs;
  R.OracleStates = P.Oracle.States;
  R.FirstFailFn = P.FirstFailFn;
  R.FirstFailAddr = P.FirstFailAddr;
  return R;
}

MutantOutcome probeMutant(const Mutant &M, const FuzzOptions &Opts,
                          std::ostream &Log, unsigned *KillIndex) {
  MutantOutcome MO;
  MO.Name = M.Name;
  MO.Description = M.Description;
  MO.Scope = scopeName(M.Scope);
  MO.ExpectedKiller = M.expectedKiller();
  Rng PR(Opts.Seed ^ (fnv1a(M.Name) * Golden));
  for (unsigned P = 0; P < Opts.MutantProbes && !MO.Killed; ++P) {
    uint64_t ProbeSeed = PR.next();
    RunRecord R = fuzzOne(P, ProbeSeed, Opts, &M);
    ++MO.Probes;
    if (!R.CheckFailures.empty()) {
      MO.Killed = true;
      MO.KilledBy = "step2";
      MO.Detail = R.CheckFailures.front();
    } else if (!R.OracleViolations.empty()) {
      MO.Killed = true;
      MO.KilledBy = "oracle";
      MO.Detail = R.OracleViolations.front();
    }
    if (MO.Killed) {
      MO.KillSeed = ProbeSeed;
      MO.KillFn = R.FirstFailFn;
      MO.KillAddr = R.FirstFailAddr;
      MO.KillIndex = P;
      if (KillIndex)
        *KillIndex = P;
    }
  }
  Log << "mutant " << MO.Name << " [" << MO.Scope << "]: "
      << (MO.Killed ? "killed by " + MO.KilledBy + " after " +
                          std::to_string(MO.Probes) + " probe(s)"
                    : "SURVIVED " + std::to_string(MO.Probes) + " probe(s)")
      << "\n";
  return MO;
}

std::string basenameOf(const std::string &Path) {
  size_t Pos = Path.find_last_of('/');
  return Pos == std::string::npos ? Path : Path.substr(Pos + 1);
}

/// Reducer demo: find a killing probe for M, shrink the subject binary
/// with the delta debugger, write the reproducer pair, and replay it.
bool reduceAndWrite(const Mutant &M, const FuzzOptions &Opts,
                    std::ostream &Log, ReductionRecord &Rec) {
  Rec.Mutant = M.Name;
  unsigned KillIndex = 0;
  MutantOutcome MO = probeMutant(M, Opts, Log, &KillIndex);
  if (!MO.Killed) {
    Log << "reduce: mutant " << M.Name << " was not killed; nothing to shrink\n";
    return false;
  }
  Rec.Seed = MO.KillSeed;
  Subject S = genSubject(KillIndex, MO.KillSeed, Opts);
  if (!S.BB)
    return false;

  // Clean lift of the same bytes supplies the instruction atoms.
  Options CleanOpt;
  CleanOpt.Library = S.Library;
  Session CleanS(S.BB->Img, CleanOpt);
  const hg::BinaryResult &Clean = CleanS.lift();

  auto fails = [&](const std::vector<uint8_t> &Bytes) {
    auto Img = elf::readElf(Bytes, "reduced");
    if (!Img)
      return false;
    PipelineOut P =
        runPipeline(*Img, S.Library, &M, S.OracleSeed, Opts.OracleRuns);
    return !P.CheckFailures.empty() || !P.Oracle.Violations.empty();
  };

  ReduceResult RR = reduceBinary(S.BB->ElfBytes, Clean, fails);
  Rec.Steps = RR.PredicateCalls;
  size_t OrigInstr = 0, OrigFns = 0;
  for (const hg::FunctionResult &F : Clean.Functions)
    if (F.Outcome == hg::LiftOutcome::Lifted) {
      ++OrigFns;
      OrigInstr += F.numInstructions();
    }
  Rec.FunctionsBefore = OrigFns;
  Rec.InstructionsBefore = OrigInstr;
  Rec.FunctionsAfter = RR.FunctionsLeft;
  Rec.InstructionsAfter = RR.InstructionsLeft;
  if (!RR.Reproduced) {
    Log << "reduce: killing seed did not reproduce deterministically\n";
    return false;
  }

  // Which layer kills the *reduced* binary (recorded for replay).
  {
    auto Img = elf::readElf(RR.Bytes, "reduced");
    if (!Img)
      return false;
    PipelineOut P =
        runPipeline(*Img, S.Library, &M, S.OracleSeed, Opts.OracleRuns);
    Rec.Layer = !P.CheckFailures.empty()          ? "step2"
                : !P.Oracle.Violations.empty() ? "oracle"
                                               : "";
    if (Rec.Layer.empty())
      return false;
  }

  std::string Stem = sidecarStem(Opts.ReproDir, M.Name);
  Rec.ReproElf = sidecarElfPath(Stem);
  Rec.ReproJson = sidecarJsonPath(Stem);
  if (!writeSidecarElf(Stem, RR.Bytes))
    return false;
  {
    std::ostringstream J;
    J << "{\n";
    J << "  \"fuzz_schema_version\": " << diag::FuzzSchemaVersion << ",\n";
    J << "  \"kind\": \"hglift-fuzz-reproducer\",\n";
    J << "  \"elf\": \"" << diag::jsonEscape(basenameOf(Rec.ReproElf))
      << "\",\n";
    J << "  \"mutant\": \"" << diag::jsonEscape(M.Name) << "\",\n";
    J << "  \"library\": " << (S.Library ? "true" : "false") << ",\n";
    J << "  \"oracle_seed\": \"" << hexStr(S.OracleSeed) << "\",\n";
    J << "  \"oracle_runs\": " << Opts.OracleRuns << ",\n";
    J << "  \"expect\": \"" << Rec.Layer << "\",\n";
    J << "  \"run_seed\": \"" << hexStr(MO.KillSeed) << "\",\n";
    J << "  \"gen_seed\": \"" << hexStr(S.GenSeed) << "\",\n";
    J << "  \"instructions\": " << Rec.InstructionsAfter << ",\n";
    J << "  \"functions\": " << Rec.FunctionsAfter << "\n";
    J << "}\n";
    if (!writeSidecarJson(Stem, J.str()))
      return false;
  }
  Log << "reduce: " << M.Name << " shrank " << Rec.InstructionsBefore
      << " -> " << Rec.InstructionsAfter << " instructions ("
      << Rec.FunctionsBefore << " -> " << Rec.FunctionsAfter
      << " functions) in " << Rec.Steps << " pipeline runs; wrote "
      << Rec.ReproJson << "\n";

  // Close the loop: the artifact we just wrote must replay.
  std::ostringstream Quiet;
  Rec.Replayed = replayReproducer(Rec.ReproJson, Quiet) == 0;
  if (!Rec.Replayed)
    Log << "reduce: WARNING: written reproducer did not replay\n";
  return true;
}

} // namespace

Subject regenerateSubject(unsigned Index, uint64_t RunSeed,
                          const FuzzOptions &Opts) {
  return genSubject(Index, RunSeed, Opts);
}

size_t CampaignResult::checkFailures() const {
  size_t N = 0;
  for (const RunRecord &R : Runs)
    N += R.CheckFailures.size();
  return N;
}

size_t CampaignResult::oracleViolations() const {
  size_t N = 0;
  for (const RunRecord &R : Runs)
    N += R.OracleViolations.size();
  return N;
}

size_t CampaignResult::mutantsKilled() const {
  size_t N = 0;
  for (const MutantOutcome &M : Mutants)
    N += M.Killed ? 1 : 0;
  return N;
}

bool CampaignResult::success() const {
  if (!Error.empty())
    return false;
  for (const RunRecord &R : Runs)
    if (!R.ok())
      return false;
  for (const MutantOutcome &M : Mutants)
    if (!M.Killed)
      return false;
  for (const ReductionRecord &R : Reductions)
    if (!R.Replayed)
      return false;
  return true;
}

CampaignResult runCampaign(const FuzzOptions &Opts, std::ostream &Log) {
  CampaignResult Res;

  // Resolve the mutant set up front so typos fail fast.
  std::vector<const Mutant *> Mutants;
  if (Opts.MutateSemantics || !Opts.MutantFilter.empty()) {
    if (Opts.MutantFilter.empty()) {
      for (const Mutant &M : mutantRegistry())
        Mutants.push_back(&M);
    } else {
      for (const std::string &Name : Opts.MutantFilter) {
        const Mutant *M = findMutant(Name);
        if (!M) {
          Res.Error = "unknown mutant: " + Name;
          return Res;
        }
        Mutants.push_back(M);
      }
    }
  }
  if (!Opts.ReduceMutant.empty() && !findMutant(Opts.ReduceMutant)) {
    Res.Error = "unknown mutant: " + Opts.ReduceMutant;
    return Res;
  }

  auto Start = std::chrono::steady_clock::now();
  auto expired = [&] {
    if (Opts.BudgetSeconds <= 0)
      return false;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
               .count() > Opts.BudgetSeconds;
  };

  Log << "fuzz campaign: seed " << hexStr(Opts.Seed) << ", " << Opts.Runs
      << " runs, " << Mutants.size() << " mutants\n";

  Rng Master(Opts.Seed);
  for (unsigned I = 0; I < Opts.Runs; ++I) {
    uint64_t RunSeed = Master.next();
    if (expired()) {
      Res.BudgetStopped = true;
      break;
    }
    RunRecord R = fuzzOne(I, RunSeed, Opts, nullptr);
    Log << "run " << I << " [" << hexStr(RunSeed) << "] " << R.Name
        << (R.Library ? " (library)" : "") << ": " << R.Outcome << ", "
        << R.LiftedFns << "/" << R.Functions << " fns, " << R.Proven << "/"
        << R.Theorems << " theorems, " << R.OracleStates
        << " oracle states";
    if (!R.ok())
      Log << "  ** FAILURE **";
    Log << "\n";
    Res.Runs.push_back(std::move(R));
  }

  // An unmutated failure is a real soundness bug: shrink it on the spot.
  for (const RunRecord &R : Res.Runs) {
    if (R.ok())
      continue;
    Log << "soundness failure in run " << R.Index << " (seed "
        << hexStr(R.RunSeed) << "): reducing\n";
    ReductionRecord Rec;
    Rec.Mutant = "";
    Rec.Seed = R.RunSeed;
    Subject S = genSubject(R.Index, R.RunSeed, Opts);
    if (S.BB) {
      Options CleanOpt;
      CleanOpt.Library = S.Library;
      Session CleanS(S.BB->Img, CleanOpt);
      const hg::BinaryResult &Clean = CleanS.lift();
      auto fails = [&](const std::vector<uint8_t> &Bytes) {
        auto Img = elf::readElf(Bytes, "reduced");
        if (!Img)
          return false;
        PipelineOut P = runPipeline(*Img, S.Library, nullptr, S.OracleSeed,
                                    Opts.OracleRuns);
        return !P.CheckFailures.empty() || !P.Oracle.Violations.empty();
      };
      ReduceResult RR = reduceBinary(S.BB->ElfBytes, Clean, fails);
      Rec.Steps = RR.PredicateCalls;
      Rec.FunctionsAfter = RR.FunctionsLeft;
      Rec.InstructionsAfter = RR.InstructionsLeft;
      std::string Stem =
          sidecarStem(Opts.ReproDir, "run" + std::to_string(R.Index));
      Rec.ReproElf = sidecarElfPath(Stem);
      writeSidecarElf(Stem, RR.Bytes);
      Log << "wrote " << Rec.ReproElf << " (" << RR.InstructionsLeft
          << " instructions, seed " << hexStr(R.RunSeed) << ")\n";
    }
    Res.Reductions.push_back(std::move(Rec));
    break; // one auto-reduction per campaign is enough signal
  }

  for (const Mutant *M : Mutants)
    Res.Mutants.push_back(probeMutant(*M, Opts, Log, nullptr));

  if (!Opts.ReduceMutant.empty()) {
    ReductionRecord Rec;
    if (reduceAndWrite(*findMutant(Opts.ReduceMutant), Opts, Log, Rec))
      Res.Reductions.push_back(std::move(Rec));
    else if (Res.Error.empty())
      Res.Error = "reduction of mutant " + Opts.ReduceMutant + " failed";
  }

  Log << "campaign " << (Res.success() ? "PASS" : "FAIL") << ": "
      << Res.Runs.size() << " runs, " << Res.oracleViolations()
      << " oracle violations, " << Res.checkFailures()
      << " check failures, " << Res.mutantsKilled() << "/"
      << Res.Mutants.size() << " mutants killed\n";
  return Res;
}

// --- the JSON report -----------------------------------------------------

namespace {

std::string jstr(const std::string &S) {
  return "\"" + diag::jsonEscape(S) + "\"";
}

std::string jhex(uint64_t V) { return "\"" + hexStr(V) + "\""; }

} // namespace

void writeFuzzJson(std::ostream &OS, const FuzzOptions &Opts,
                   const CampaignResult &R) {
  size_t Functions = 0, LiftedFns = 0, Theorems = 0, Proven = 0;
  size_t OracleWalks = 0, OracleStates = 0, ReduceSteps = 0;
  for (const RunRecord &Run : R.Runs) {
    Functions += Run.Functions;
    LiftedFns += Run.LiftedFns;
    Theorems += Run.Theorems;
    Proven += Run.Proven;
    OracleWalks += Run.OracleWalks;
    OracleStates += Run.OracleStates;
  }
  for (const ReductionRecord &Red : R.Reductions)
    ReduceSteps += Red.Steps;

  double KillRate =
      R.Mutants.empty()
          ? 1.0
          : static_cast<double>(R.mutantsKilled()) /
                static_cast<double>(R.Mutants.size());
  char KillRateBuf[32];
  std::snprintf(KillRateBuf, sizeof(KillRateBuf), "%.4f", KillRate);

  OS << "{\n";
  OS << "  \"fuzz_schema_version\": " << diag::FuzzSchemaVersion << ",\n";
  OS << "  \"seed\": " << jhex(Opts.Seed) << ",\n";
  OS << "  \"runs_requested\": " << Opts.Runs << ",\n";
  OS << "  \"runs_completed\": " << R.Runs.size() << ",\n";
  OS << "  \"max_insns\": " << Opts.MaxInsns << ",\n";
  OS << "  \"oracle_runs_per_function\": " << Opts.OracleRuns << ",\n";
  OS << "  \"mutate_semantics\": "
     << (R.Mutants.empty() ? "false" : "true") << ",\n";
  OS << "  \"budget_stopped\": " << (R.BudgetStopped ? "true" : "false")
     << ",\n";
  OS << "  \"error\": " << jstr(R.Error) << ",\n";
  OS << "  \"success\": " << (R.success() ? "true" : "false") << ",\n";

  OS << "  \"totals\": {\n";
  OS << "    \"functions\": " << Functions << ",\n";
  OS << "    \"functions_lifted\": " << LiftedFns << ",\n";
  OS << "    \"edges_checked\": " << Theorems << ",\n";
  OS << "    \"edges_proven\": " << Proven << ",\n";
  OS << "    \"oracle_walks\": " << OracleWalks << ",\n";
  OS << "    \"oracle_states\": " << OracleStates << ",\n";
  OS << "    \"oracle_violations\": " << R.oracleViolations() << ",\n";
  OS << "    \"check_failures\": " << R.checkFailures() << ",\n";
  OS << "    \"mutants\": " << R.Mutants.size() << ",\n";
  OS << "    \"mutants_killed\": " << R.mutantsKilled() << ",\n";
  OS << "    \"kill_rate\": " << KillRateBuf << ",\n";
  OS << "    \"reduce_steps\": " << ReduceSteps << "\n";
  OS << "  },\n";

  OS << "  \"runs\": [";
  for (size_t I = 0; I < R.Runs.size(); ++I) {
    const RunRecord &Run = R.Runs[I];
    OS << (I ? ",\n" : "\n");
    OS << "    {\"index\": " << Run.Index << ", \"seed\": "
       << jhex(Run.RunSeed) << ", \"gen_seed\": " << jhex(Run.GenSeed)
       << ", \"oracle_seed\": " << jhex(Run.OracleSeed)
       << ", \"name\": " << jstr(Run.Name)
       << ", \"library\": " << (Run.Library ? "true" : "false")
       << ", \"outcome\": " << jstr(Run.Outcome)
       << ", \"functions\": " << Run.Functions
       << ", \"functions_lifted\": " << Run.LiftedFns
       << ", \"instructions\": " << Run.Instructions
       << ", \"edges_checked\": " << Run.Theorems
       << ", \"edges_proven\": " << Run.Proven
       << ", \"oracle_walks\": " << Run.OracleWalks
       << ", \"oracle_states\": " << Run.OracleStates
       << ", \"ok\": " << (Run.ok() ? "true" : "false")
       << ", \"check_failures\": [";
    for (size_t J = 0; J < Run.CheckFailures.size(); ++J)
      OS << (J ? ", " : "") << jstr(Run.CheckFailures[J]);
    OS << "], \"oracle_violations\": [";
    for (size_t J = 0; J < Run.OracleViolations.size(); ++J)
      OS << (J ? ", " : "") << jstr(Run.OracleViolations[J]);
    OS << "]}";
  }
  OS << "\n  ],\n";

  OS << "  \"mutants\": [";
  for (size_t I = 0; I < R.Mutants.size(); ++I) {
    const MutantOutcome &M = R.Mutants[I];
    OS << (I ? ",\n" : "\n");
    OS << "    {\"name\": " << jstr(M.Name)
       << ", \"description\": " << jstr(M.Description)
       << ", \"scope\": " << jstr(M.Scope)
       << ", \"expected_killer\": " << jstr(M.ExpectedKiller)
       << ", \"killed\": " << (M.Killed ? "true" : "false")
       << ", \"killed_by\": " << jstr(M.KilledBy)
       << ", \"kill_seed\": " << jhex(M.KillSeed)
       << ", \"probes\": " << M.Probes << ", \"kill\": {\"function\": "
       << jhex(M.KillFn) << ", \"addr\": " << jhex(M.KillAddr)
       << ", \"detail\": " << jstr(M.Detail) << "}}";
  }
  OS << "\n  ],\n";

  OS << "  \"reductions\": [";
  for (size_t I = 0; I < R.Reductions.size(); ++I) {
    const ReductionRecord &Red = R.Reductions[I];
    OS << (I ? ",\n" : "\n");
    OS << "    {\"mutant\": " << jstr(Red.Mutant)
       << ", \"seed\": " << jhex(Red.Seed) << ", \"steps\": " << Red.Steps
       << ", \"functions_before\": " << Red.FunctionsBefore
       << ", \"instructions_before\": " << Red.InstructionsBefore
       << ", \"functions_after\": " << Red.FunctionsAfter
       << ", \"instructions_after\": " << Red.InstructionsAfter
       << ", \"layer\": " << jstr(Red.Layer)
       << ", \"repro_elf\": " << jstr(Red.ReproElf)
       << ", \"repro_json\": " << jstr(Red.ReproJson)
       << ", \"replayed\": " << (Red.Replayed ? "true" : "false") << "}";
  }
  OS << "\n  ]\n";
  OS << "}\n";
}

// --- replay --------------------------------------------------------------

int replayReproducer(const std::string &JsonPath, std::ostream &Log) {
  std::ifstream In(JsonPath);
  if (!In) {
    Log << "replay: cannot open " << JsonPath << "\n";
    return 2;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  auto Doc = diag::parseJson(SS.str());
  if (!Doc || !Doc->isObj()) {
    Log << "replay: malformed reproducer JSON\n";
    return 2;
  }
  if (static_cast<unsigned>(Doc->num("fuzz_schema_version")) !=
      diag::FuzzSchemaVersion) {
    Log << "replay: unsupported fuzz_schema_version\n";
    return 2;
  }
  if (Doc->str("kind") != "hglift-fuzz-reproducer") {
    Log << "replay: not a fuzz reproducer\n";
    return 2;
  }

  std::string Elf = Doc->str("elf");
  if (Elf.empty()) {
    Log << "replay: missing elf field\n";
    return 2;
  }
  if (Elf.front() != '/') {
    size_t Pos = JsonPath.find_last_of('/');
    if (Pos != std::string::npos)
      Elf = JsonPath.substr(0, Pos + 1) + Elf;
  }
  auto Img = elf::readElfFile(Elf);
  if (!Img) {
    Log << "replay: cannot read " << Elf << "\n";
    return 2;
  }

  std::string MutantName = Doc->str("mutant");
  const Mutant *M = nullptr;
  if (!MutantName.empty()) {
    M = findMutant(MutantName);
    if (!M) {
      Log << "replay: unknown mutant " << MutantName << "\n";
      return 2;
    }
  }
  bool Library = false;
  if (const diag::JValue *L = Doc->get("library"))
    Library = L->B;
  uint64_t OracleSeed =
      std::strtoull(Doc->str("oracle_seed", "0").c_str(), nullptr, 0);
  unsigned OracleRuns =
      static_cast<unsigned>(Doc->num("oracle_runs", 3));

  PipelineOut P = runPipeline(*Img, Library, M, OracleSeed, OracleRuns);
  std::string Layer = !P.CheckFailures.empty()          ? "step2"
                      : !P.Oracle.Violations.empty() ? "oracle"
                                                     : "";
  if (Layer.empty()) {
    Log << "replay: did not reproduce (" << P.Proven << "/" << P.Theorems
        << " theorems proven, " << P.Oracle.States
        << " oracle states clean)\n";
    return 1;
  }
  std::string Detail = Layer == "step2" ? P.CheckFailures.front()
                                        : P.Oracle.Violations.front().Message;
  Log << "replay: reproduced via " << Layer << ": " << Detail << "\n";
  if (Doc->str("expect") != Layer)
    Log << "replay: note: originally recorded layer was "
        << Doc->str("expect") << "\n";
  return 0;
}

} // namespace hglift::fuzz
