//===- Oracle.cpp - Concrete-execution soundness oracle -------------------===//

#include "fuzz/Oracle.h"

#include "semantics/SymExec.h"
#include "support/Format.h"

#include <cassert>

namespace hglift::fuzz {

using expr::Expr;
using expr::maskToWidth;
using expr::signExtend;
using sem::CtrlKind;
using sem::Machine;
using sem::StepOut;
using sem::Succ;
using x86::NumGPRs;
using x86::Reg;
using x86::regFromNum;
using x86::regName;

expr::VarValuation OracleCtx::vars() const {
  return [this](uint32_t Id) -> uint64_t {
    const expr::VarInfo &VI = Ctx->varInfo(Id);
    if (VI.Cls == expr::VarClass::RetSym || VI.Cls == expr::VarClass::RetAddr)
      return RetAddr;
    for (unsigned RI = 0; RI < NumGPRs; ++RI)
      if (VI.Name == regName(regFromNum(RI)) + "0")
        return Init[RI];
    return 0; // Fresh/External: callers skip clauses with fresh leaves
  };
}

expr::MemOracle OracleCtx::initMem() const {
  return [this](uint64_t A, uint32_t Sz) { return EntryM.load(A, Sz); };
}

namespace {

/// Does the tracked flag abstraction agree with the machine's flags? Each
/// FlagState kind constrains a different subset: Cmp and Test pin all of
/// ZF/SF/CF/OF, Res pins ZF/SF (the producing instructions disagree on
/// CF/OF, which the abstraction therefore never derives), ZeroOf pins ZF.
bool flagsSatisfied(const pred::FlagState &F, const OracleCtx &CC,
                    const Machine &M) {
  using Kind = pred::FlagState::Kind;
  if (F.K == Kind::Unknown)
    return true;
  if (!F.L || F.L->hasFreshLeaf() || (F.R && F.R->hasFreshLeaf()))
    return true; // havoc operand: existentially quantified, skip
  auto Vars = CC.vars();
  auto InitMem = CC.initMem();
  auto L = expr::evalExpr(F.L, Vars, InitMem);
  if (!L)
    return true;
  std::optional<uint64_t> R;
  if (F.R) {
    R = expr::evalExpr(F.R, Vars, InitMem);
    if (!R)
      return true;
  }
  unsigned W = F.Width;
  switch (F.K) {
  case Kind::Unknown:
    return true;
  case Kind::Cmp: {
    // Flags of L - R (sem::Machine flagsSub).
    uint64_t MA = maskToWidth(*L, W), MB = maskToWidth(R ? *R : 0, W);
    uint64_t Res = maskToWidth(MA - MB, W);
    bool ZF = Res == 0, SF = signExtend(Res, W) < 0, CF = MA < MB;
    bool SA = signExtend(MA, W) < 0, SB = signExtend(MB, W) < 0;
    bool OF = (SA != SB) && (SF != SA);
    return M.ZF == ZF && M.SF == SF && M.CF == CF && M.OF == OF;
  }
  case Kind::Test: {
    // Flags of L & R with CF = OF = 0 (sem::Machine flagsLogic).
    uint64_t Res = maskToWidth(*L & (R ? *R : 0), W);
    bool ZF = Res == 0, SF = signExtend(Res, W) < 0;
    return M.ZF == ZF && M.SF == SF && !M.CF && !M.OF;
  }
  case Kind::Res: {
    uint64_t Res = maskToWidth(*L, W);
    bool ZF = Res == 0, SF = signExtend(Res, W) < 0;
    return M.ZF == ZF && M.SF == SF;
  }
  case Kind::ZeroOf:
    return M.ZF == (maskToWidth(*L, W) == 0);
  }
  return true;
}

} // namespace

bool stateSatisfies(const pred::Pred &P, const OracleCtx &CC,
                    const Machine &M) {
  if (P.isBottom())
    return false;
  auto Vars = CC.vars();
  auto InitMem = CC.initMem();
  for (unsigned RI = 0; RI < NumGPRs; ++RI) {
    const Expr *V = P.reg64(regFromNum(RI));
    if (!V || V->hasFreshLeaf())
      continue;
    auto EV = expr::evalExpr(V, Vars, InitMem);
    if (!EV || *EV != M.Regs[RI])
      return false;
  }
  if (!flagsSatisfied(P.flags(), CC, M))
    return false;
  for (const pred::MemCell &C : P.cells()) {
    if (C.Addr->hasFreshLeaf() || C.Val->hasFreshLeaf())
      continue;
    auto A = expr::evalExpr(C.Addr, Vars, InitMem);
    auto V = expr::evalExpr(C.Val, Vars, InitMem);
    if (!A || !V)
      return false;
    if (M.load(*A, C.Size) != maskToWidth(*V, C.Size * 8))
      return false;
  }
  for (const pred::RangeClause &C : P.ranges()) {
    if (C.E->hasFreshLeaf())
      continue;
    auto EV = expr::evalExpr(C.E, Vars, InitMem);
    if (!EV)
      return false;
    uint64_t U = *EV, B = C.Bound;
    int64_t S = static_cast<int64_t>(U), SB = static_cast<int64_t>(B);
    bool OK = true;
    switch (C.Op) {
    case pred::RelOp::Eq:
      OK = U == B;
      break;
    case pred::RelOp::Ne:
      OK = U != B;
      break;
    case pred::RelOp::ULt:
      OK = U < B;
      break;
    case pred::RelOp::ULe:
      OK = U <= B;
      break;
    case pred::RelOp::UGe:
      OK = U >= B;
      break;
    case pred::RelOp::UGt:
      OK = U > B;
      break;
    case pred::RelOp::SLt:
      OK = S < SB;
      break;
    case pred::RelOp::SLe:
      OK = S <= SB;
      break;
    case pred::RelOp::SGe:
      OK = S >= SB;
      break;
    case pred::RelOp::SGt:
      OK = S > SB;
      break;
    }
    if (!OK)
      return false;
  }
  return true;
}

namespace {

/// Explored vertices of F at the given rip.
std::vector<const hg::Vertex *> verticesAt(const hg::FunctionResult &F,
                                           uint64_t Rip) {
  std::vector<const hg::Vertex *> Out;
  for (auto It = F.Graph.Vertices.lower_bound(hg::VertexKey{Rip, 0});
       It != F.Graph.Vertices.end() && It->first.Rip == Rip; ++It)
    if (It->second.Explored)
      Out.push_back(&It->second);
  return Out;
}

} // namespace

void walkOnce(const elf::BinaryImage &Img, const hg::FunctionResult &F,
              Rng &R, OracleResult &Out) {
  assert(!sem::installedStepMutator() &&
         "oracle must run with clean semantics");
  Machine M(Img, R.next());
  M.setupCall(F.Entry);

  OracleCtx CC(Img);
  CC.Ctx = &F.ctx();
  for (unsigned RI = 0; RI < NumGPRs; ++RI) {
    if (regFromNum(RI) == Reg::RSP) {
      CC.Init[RI] = M.reg(Reg::RSP);
      continue;
    }
    CC.Init[RI] = R.chance(1, 3) ? R.below(1000) : R.next();
    M.setReg(regFromNum(RI), CC.Init[RI]);
  }
  CC.RetAddr = M.load(M.reg(Reg::RSP), 8);
  CC.EntryM = M;

  ++Out.Runs;
  sem::SymExec &Exec = F.Arena->exec();

  auto violate = [&](uint64_t Addr, std::string Msg) {
    Out.Violations.push_back(
        OracleViolation{F.Entry, Addr, std::move(Msg)});
  };

  for (int Step = 0; Step < 300; ++Step) {
    uint64_t Rip = M.Rip;
    auto Vs = verticesAt(F, Rip);
    if (Vs.empty())
      return; // control left this function (callee frame, external stub)

    // Property 1: some invariant at this rip covers the concrete state.
    ++Out.States;
    std::vector<const hg::Vertex *> Admitting;
    for (const hg::Vertex *V : Vs)
      if (stateSatisfies(V->State.P, CC, M))
        Admitting.push_back(V);
    if (Admitting.empty()) {
      violate(Rip, "no vertex at " + hexStr(Rip) +
                       " admits the concrete state (" +
                       std::to_string(Vs.size()) + " vertices)");
      return;
    }

    bool WasCall = Admitting[0]->Instr.isCall();
    Machine::Status St = M.step();
    if (St == Machine::Status::Returned || St == Machine::Status::Halted) {
      if (St == Machine::Status::Returned) {
        // Property 2 (return): an admitting vertex must have a Ret edge.
        bool HasRet = false;
        for (const hg::Vertex *V : Admitting)
          for (const hg::Edge &E : F.Graph.Edges)
            HasRet |= E.From == V->Key && E.To.Rip == hg::RetTargetRip;
        if (!HasRet)
          violate(Rip, "concrete return at " + hexStr(Rip) +
                           " has no Ret edge");
      }
      return;
    }
    if (St != Machine::Status::Running)
      return; // fault/limit on a random register file: out of scope
    if (WasCall && M.Rip != Admitting[0]->Instr.nextAddr())
      return; // internal call: execution descended into the callee frame;
              // the symbolic successor models the return site instead

    // Property 2: some symbolic successor of an admitting vertex admits
    // the concrete post-state (or the step hit an annotated indirection).
    bool Covered = false, Annotated = false;
    for (const hg::Vertex *V : Admitting) {
      StepOut SO = Exec.step(V->State, V->Instr, F.RetSym);
      if (SO.VerifError)
        continue;
      for (const Succ &S : SO.Succs) {
        if (S.K == CtrlKind::UnresJump) {
          Annotated = true; // annotation B overapproximates any target
          continue;
        }
        if (S.NextAddr != M.Rip)
          continue;
        if (stateSatisfies(S.S.P, CC, M)) {
          Covered = true;
          break;
        }
      }
      if (Covered)
        break;
    }
    if (!Covered && !Annotated) {
      violate(Rip, "concrete step " + hexStr(Rip) + " -> " + hexStr(M.Rip) +
                       " not admitted by any symbolic successor");
      return;
    }
    if (Annotated && !Covered)
      return; // symbolic exploration stopped at the annotation
  }
}

OracleResult runOracle(const elf::BinaryImage &Img,
                       const hg::BinaryResult &R, uint64_t Seed,
                       int RunsPerFunction) {
  OracleResult Out;
  Rng Rand(Seed);
  for (const hg::FunctionResult &F : R.Functions) {
    if (F.Outcome != hg::LiftOutcome::Lifted)
      continue;
    for (int I = 0; I < RunsPerFunction; ++I)
      walkOnce(Img, F, Rand, Out);
  }
  return Out;
}

} // namespace hglift::fuzz
