//===- Oracle.cpp - Concrete-execution soundness oracle -------------------===//

#include "fuzz/Oracle.h"

#include "semantics/SymExec.h"
#include "support/Format.h"

#include <cassert>

namespace hglift::fuzz {

using expr::Expr;
using expr::maskToWidth;
using expr::signExtend;
using sem::CtrlKind;
using sem::Machine;
using sem::StepOut;
using sem::Succ;
using x86::NumGPRs;
using x86::Reg;
using x86::regFromNum;
using x86::regName;

expr::VarValuation OracleCtx::vars() const {
  return [this](uint32_t Id) -> uint64_t {
    const expr::VarInfo &VI = Ctx->varInfo(Id);
    if (VI.Cls == expr::VarClass::RetSym || VI.Cls == expr::VarClass::RetAddr)
      return RetAddr;
    for (unsigned RI = 0; RI < NumGPRs; ++RI)
      if (VI.Name == regName(regFromNum(RI)) + "0")
        return Init[RI];
    return 0; // Fresh/External: callers skip clauses with fresh leaves
  };
}

expr::MemOracle OracleCtx::initMem() const {
  return [this](uint64_t A, uint32_t Sz) { return EntryM.load(A, Sz); };
}

namespace {

/// Evaluate a RelOp on concrete operands (the same table leq entailment
/// and the range clauses use).
bool relHolds(pred::RelOp Op, uint64_t U, uint64_t B) {
  int64_t S = static_cast<int64_t>(U), SB = static_cast<int64_t>(B);
  switch (Op) {
  case pred::RelOp::Eq:
    return U == B;
  case pred::RelOp::Ne:
    return U != B;
  case pred::RelOp::ULt:
    return U < B;
  case pred::RelOp::ULe:
    return U <= B;
  case pred::RelOp::UGe:
    return U >= B;
  case pred::RelOp::UGt:
    return U > B;
  case pred::RelOp::SLt:
    return S < SB;
  case pred::RelOp::SLe:
    return S <= SB;
  case pred::RelOp::SGe:
    return S >= SB;
  case pred::RelOp::SGt:
    return S > SB;
  }
  return true;
}

/// Does the tracked flag abstraction agree with the machine's flags? Each
/// FlagState kind constrains a different subset: Cmp and Test pin all of
/// ZF/SF/CF/OF, Res pins ZF/SF (the producing instructions disagree on
/// CF/OF, which the abstraction therefore never derives), ZeroOf pins ZF.
/// On disagreement, fills *Fail with the pinned subset and expected bits.
bool flagsSatisfied(const pred::FlagState &F, const OracleCtx &CC,
                    const Machine &M, SatFailure *Fail) {
  using Kind = pred::FlagState::Kind;
  if (F.K == Kind::Unknown)
    return true;
  if (!F.L || F.L->hasFreshLeaf() || (F.R && F.R->hasFreshLeaf()))
    return true; // havoc operand: existentially quantified, skip
  auto Vars = CC.vars();
  auto InitMem = CC.initMem();
  auto L = expr::evalExpr(F.L, Vars, InitMem);
  if (!L)
    return true;
  std::optional<uint64_t> R;
  if (F.R) {
    R = expr::evalExpr(F.R, Vars, InitMem);
    if (!R)
      return true;
  }
  unsigned W = F.Width;
  auto fill = [&](const char *Pinned, bool ZF, bool SF, bool CF, bool OF) {
    if (!Fail)
      return;
    Fail->K = SatFailure::Kind::Flags;
    Fail->Evaluated = true;
    Fail->FlagsPinned = Pinned;
    Fail->ExpZF = ZF;
    Fail->ExpSF = SF;
    Fail->ExpCF = CF;
    Fail->ExpOF = OF;
  };
  switch (F.K) {
  case Kind::Unknown:
    return true;
  case Kind::Cmp: {
    // Flags of L - R (sem::Machine flagsSub).
    uint64_t MA = maskToWidth(*L, W), MB = maskToWidth(R ? *R : 0, W);
    uint64_t Res = maskToWidth(MA - MB, W);
    bool ZF = Res == 0, SF = signExtend(Res, W) < 0, CF = MA < MB;
    bool SA = signExtend(MA, W) < 0, SB = signExtend(MB, W) < 0;
    bool OF = (SA != SB) && (SF != SA);
    if (M.ZF == ZF && M.SF == SF && M.CF == CF && M.OF == OF)
      return true;
    fill("zsco", ZF, SF, CF, OF);
    return false;
  }
  case Kind::Test: {
    // Flags of L & R with CF = OF = 0 (sem::Machine flagsLogic).
    uint64_t Res = maskToWidth(*L & (R ? *R : 0), W);
    bool ZF = Res == 0, SF = signExtend(Res, W) < 0;
    if (M.ZF == ZF && M.SF == SF && !M.CF && !M.OF)
      return true;
    fill("zsco", ZF, SF, false, false);
    return false;
  }
  case Kind::Res: {
    uint64_t Res = maskToWidth(*L, W);
    bool ZF = Res == 0, SF = signExtend(Res, W) < 0;
    if (M.ZF == ZF && M.SF == SF)
      return true;
    fill("zs", ZF, SF, false, false);
    return false;
  }
  case Kind::ZeroOf: {
    bool ZF = maskToWidth(*L, W) == 0;
    if (M.ZF == ZF)
      return true;
    fill("z", ZF, false, false, false);
    return false;
  }
  }
  return true;
}

/// Render the symbolic text of a FlagState clause.
std::string flagsClauseText(const pred::FlagState &F,
                            const expr::ExprContext &Ctx) {
  using Kind = pred::FlagState::Kind;
  const char *K = F.K == Kind::Cmp    ? "cmp"
                  : F.K == Kind::Test ? "test"
                  : F.K == Kind::Res  ? "res"
                                      : "zeroof";
  std::string S = std::string("flags ") + K + "(";
  if (F.L)
    S += F.L->str(Ctx);
  if (F.R)
    S += ", " + F.R->str(Ctx);
  S += ", w" + std::to_string(F.Width) + ")";
  return S;
}

} // namespace

std::optional<SatFailure> stateSatisfiesExplain(const pred::Pred &P,
                                                const OracleCtx &CC,
                                                const Machine &M,
                                                bool RenderClause) {
  if (P.isBottom()) {
    SatFailure F;
    F.K = SatFailure::Kind::Bottom;
    if (RenderClause)
      F.Clause = "false";
    return F;
  }
  auto Vars = CC.vars();
  auto InitMem = CC.initMem();
  for (unsigned RI = 0; RI < NumGPRs; ++RI) {
    const Expr *V = P.reg64(regFromNum(RI));
    if (!V || V->hasFreshLeaf())
      continue;
    auto EV = expr::evalExpr(V, Vars, InitMem);
    if (!EV || *EV != M.Regs[RI]) {
      SatFailure F;
      F.K = SatFailure::Kind::Reg;
      F.RegNum = RI;
      if (EV) {
        F.Evaluated = true;
        F.Expect = *EV;
      }
      if (RenderClause && CC.Ctx)
        F.Clause = regName(regFromNum(RI)) + " == " + V->str(*CC.Ctx);
      return F;
    }
  }
  {
    SatFailure F;
    if (!flagsSatisfied(P.flags(), CC, M, &F)) {
      if (RenderClause && CC.Ctx)
        F.Clause = flagsClauseText(P.flags(), *CC.Ctx);
      return F;
    }
  }
  for (const pred::MemCell &C : P.cells()) {
    if (C.Addr->hasFreshLeaf() || C.Val->hasFreshLeaf())
      continue;
    auto A = expr::evalExpr(C.Addr, Vars, InitMem);
    auto V = expr::evalExpr(C.Val, Vars, InitMem);
    bool OK = A && V && M.load(*A, C.Size) == maskToWidth(*V, C.Size * 8);
    if (OK)
      continue;
    SatFailure F;
    F.K = SatFailure::Kind::Mem;
    F.MemSize = C.Size;
    if (A && V) {
      F.Evaluated = true;
      F.MemAddr = *A;
      F.Expect = maskToWidth(*V, C.Size * 8);
    }
    if (RenderClause && CC.Ctx)
      F.Clause = "[" + C.Addr->str(*CC.Ctx) + "]:" +
                 std::to_string(C.Size) + " == " + C.Val->str(*CC.Ctx);
    return F;
  }
  for (const pred::RangeClause &C : P.ranges()) {
    if (C.E->hasFreshLeaf())
      continue;
    auto EV = expr::evalExpr(C.E, Vars, InitMem);
    if (EV && relHolds(C.Op, *EV, C.Bound))
      continue;
    SatFailure F;
    F.K = SatFailure::Kind::Range;
    F.Op = C.Op;
    F.Bound = C.Bound;
    if (EV) {
      F.Evaluated = true;
      F.Value = *EV;
    }
    if (RenderClause && CC.Ctx)
      F.Clause = C.E->str(*CC.Ctx) + " " + pred::relOpName(C.Op) + " " +
                 std::to_string(C.Bound);
    return F;
  }
  return std::nullopt;
}

bool stateSatisfies(const pred::Pred &P, const OracleCtx &CC,
                    const Machine &M) {
  return !stateSatisfiesExplain(P, CC, M, /*RenderClause=*/false).has_value();
}

/// Explored vertices of F at the given rip.
std::vector<const hg::Vertex *> verticesAt(const hg::FunctionResult &F,
                                           uint64_t Rip) {
  std::vector<const hg::Vertex *> Out;
  for (auto It = F.Graph.Vertices.lower_bound(hg::VertexKey{Rip, 0});
       It != F.Graph.Vertices.end() && It->first.Rip == Rip; ++It)
    if (It->second.Explored)
      Out.push_back(&It->second);
  return Out;
}

WalkResult walkFrom(const elf::BinaryImage &Img, const hg::FunctionResult &F,
                    const std::array<uint64_t, x86::NumGPRs> &InitRegs,
                    uint64_t MachineSeed, int MaxSteps) {
  assert(!sem::installedStepMutator() &&
         "oracle must run with clean semantics");
  WalkResult Out;
  Machine M(Img, MachineSeed);
  M.setupCall(F.Entry);

  OracleCtx CC(Img);
  CC.Ctx = &F.ctx();
  for (unsigned RI = 0; RI < NumGPRs; ++RI) {
    if (regFromNum(RI) == Reg::RSP) {
      CC.Init[RI] = M.reg(Reg::RSP);
      continue;
    }
    CC.Init[RI] = InitRegs[RI];
    M.setReg(regFromNum(RI), CC.Init[RI]);
  }
  CC.RetAddr = M.load(M.reg(Reg::RSP), 8);
  CC.EntryM = M;

  sem::SymExec &Exec = F.Arena->exec();
  uint64_t Prev = 0; // rip executed just before the current one

  auto violate = [&](WalkViolation::Kind K, uint64_t Addr, std::string Msg) {
    Out.Violated = true;
    Out.V.K = K;
    Out.V.Addr = Addr;
    Out.V.PrevRip = Prev;
    Out.V.Message = std::move(Msg);
  };

  for (int Step = 0; Step < MaxSteps; ++Step) {
    uint64_t Rip = M.Rip;
    auto Vs = verticesAt(F, Rip);
    if (Vs.empty())
      break; // control left this function (callee frame, external stub)

    // Property 1: some invariant at this rip covers the concrete state.
    ++Out.States;
    std::vector<const hg::Vertex *> Admitting;
    for (const hg::Vertex *V : Vs)
      if (!stateSatisfiesExplain(V->State.P, CC, M, /*RenderClause=*/false))
        Admitting.push_back(V);
    if (Admitting.empty()) {
      violate(WalkViolation::Kind::NoAdmittingVertex, Rip,
              "no vertex at " + hexStr(Rip) +
                  " admits the concrete state (" +
                  std::to_string(Vs.size()) + " vertices)");
      // Designate the first vertex's invariant and re-explain with the
      // symbolic clause text rendered.
      if (auto Fail = stateSatisfiesExplain(Vs[0]->State.P, CC, M)) {
        Out.V.HasFail = true;
        Out.V.Fail = std::move(*Fail);
      }
      break;
    }

    bool WasCall = Admitting[0]->Instr.isCall();
    Machine::Status St = M.step();
    if (St == Machine::Status::Returned || St == Machine::Status::Halted) {
      if (St == Machine::Status::Returned) {
        // Property 2 (return): an admitting vertex must have a Ret edge.
        bool HasRet = false;
        for (const hg::Vertex *V : Admitting)
          for (const hg::Edge &E : F.Graph.Edges)
            HasRet |= E.From == V->Key && E.To.Rip == hg::RetTargetRip;
        if (!HasRet)
          violate(WalkViolation::Kind::MissingRetEdge, Rip,
                  "concrete return at " + hexStr(Rip) + " has no Ret edge");
      }
      break;
    }
    if (St != Machine::Status::Running)
      break; // fault/limit on a random register file: out of scope
    if (WasCall && M.Rip != Admitting[0]->Instr.nextAddr())
      break; // internal call: execution descended into the callee frame;
             // the symbolic successor models the return site instead

    // Property 2: some symbolic successor of an admitting vertex admits
    // the concrete post-state (or the step hit an annotated indirection).
    bool Covered = false, Annotated = false;
    std::optional<SatFailure> SuccFail;
    for (const hg::Vertex *V : Admitting) {
      StepOut SO = Exec.step(V->State, V->Instr, F.RetSym);
      if (SO.VerifError)
        continue;
      for (const Succ &S : SO.Succs) {
        if (S.K == CtrlKind::UnresJump) {
          Annotated = true; // annotation B overapproximates any target
          continue;
        }
        if (S.NextAddr != M.Rip)
          continue;
        auto Fail = stateSatisfiesExplain(S.S.P, CC, M);
        if (!Fail) {
          Covered = true;
          break;
        }
        if (!SuccFail)
          SuccFail = std::move(*Fail);
      }
      if (Covered)
        break;
    }
    if (!Covered && !Annotated) {
      violate(WalkViolation::Kind::SuccessorNotAdmitted, Rip,
              "concrete step " + hexStr(Rip) + " -> " + hexStr(M.Rip) +
                  " not admitted by any symbolic successor");
      Out.V.NextRip = M.Rip;
      if (SuccFail) {
        Out.V.HasFail = true;
        Out.V.Fail = std::move(*SuccFail);
      }
      break;
    }
    Prev = Rip;
    if (Annotated && !Covered)
      break; // symbolic exploration stopped at the annotation
  }
  Out.Trace = M.trace();
  return Out;
}

void walkOnce(const elf::BinaryImage &Img, const hg::FunctionResult &F,
              Rng &R, OracleResult &Out) {
  // Draw the entry state exactly as the oracle always has: machine seed
  // first, then per non-RSP register a 1-in-3 small value, else full
  // random. walkFrom replays the deterministic core.
  uint64_t MachineSeed = R.next();
  std::array<uint64_t, NumGPRs> Init{};
  for (unsigned RI = 0; RI < NumGPRs; ++RI) {
    if (regFromNum(RI) == Reg::RSP)
      continue;
    Init[RI] = R.chance(1, 3) ? R.below(1000) : R.next();
  }
  ++Out.Runs;
  WalkResult WR = walkFrom(Img, F, Init, MachineSeed);
  Out.States += WR.States;
  if (WR.Violated)
    Out.Violations.push_back(OracleViolation{F.Entry, WR.V.Addr, WR.V.Message});
}

OracleResult runOracle(const elf::BinaryImage &Img,
                       const hg::BinaryResult &R, uint64_t Seed,
                       int RunsPerFunction) {
  OracleResult Out;
  Rng Rand(Seed);
  for (const hg::FunctionResult &F : R.Functions) {
    if (F.Outcome != hg::LiftOutcome::Lifted)
      continue;
    for (int I = 0; I < RunsPerFunction; ++I)
      walkOnce(Img, F, Rand, Out);
  }
  return Out;
}

} // namespace hglift::fuzz
