//===- Mutants.cpp - Deliberately-wrong semantics variants ----------------===//
//
// Design rules every mutant obeys (see Mutants.h for why):
//
//  * wrong, not weaker: a mutated claim must contradict the machine, never
//    just say less — weakenings are sound overapproximations and therefore
//    unkillable by construction;
//  * never corrupt RSP/RBP: a broken stack pointer trips the lifter's own
//    return-address sanity check, rejecting the function at Step 1 — a
//    rejection is not a kill (nothing wrong was *claimed*);
//  * evaluable claims: mutated expressions are built from expressions the
//    clean semantics already derived, so the oracle (which skips Fresh
//    leaves) can actually decide them;
//  * deterministic: pure functions of (StepOut, pre-state, instruction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutants.h"

#include <algorithm>

namespace hglift::fuzz {

using expr::Expr;
using expr::ExprContext;
using expr::Opcode;
using sem::CtrlKind;
using sem::StepOut;
using sem::Succ;
using sem::SymState;
using x86::Instr;
using x86::Mnemonic;
using x86::Reg;

namespace {

/// Safe register-destination filter: scratch registers only, never the
/// frame (see design rules above).
bool safeDest(const Instr &I) {
  return I.Ops[0].isReg() && I.Ops[0].R != Reg::RSP && I.Ops[0].R != Reg::RBP;
}

/// Rewrite the destination register's claim in every fall-through
/// successor with F(old claim).
template <typename Fn>
void rewriteDest(StepOut &Out, const Instr &I, Fn F) {
  for (Succ &S : Out.Succs) {
    if (S.K != CtrlKind::Fall)
      continue;
    const Expr *V = S.S.P.reg64(I.Ops[0].R);
    if (const Expr *NV = F(V))
      if (NV != V)
        S.S.P.setReg64(I.Ops[0].R, NV);
  }
}

/// Rewrite the flag abstraction in every fall-through successor, if the
/// clean semantics set a Cmp-kind FlagState there.
template <typename Fn>
void rewriteCmpFlags(StepOut &Out, Fn F) {
  for (Succ &S : Out.Succs) {
    if (S.K != CtrlKind::Fall)
      continue;
    const pred::FlagState FS = S.S.P.flags();
    if (FS.K == pred::FlagState::Kind::Cmp)
      F(S.S.P, FS);
  }
}

std::vector<Mutant> buildRegistry() {
  std::vector<Mutant> R;

  // 1. Off-by-one result of add reg, imm. Scope Both: the checker
  // re-derives the same wrong claim; the machine's register disagrees.
  R.push_back(Mutant{
      "add-imm-off-by-one",
      "add reg, imm claims dest = dest+imm+1 (off-by-one arithmetic)",
      MutantScope::Both,
      [](StepOut &Out, const SymState &, const Instr &I, ExprContext &Ctx) {
        if (I.Mn != Mnemonic::Add || !safeDest(I) || !I.Ops[1].isImm())
          return;
        rewriteDest(Out, I, [&](const Expr *V) {
          return V && !V->hasFreshLeaf() ? Ctx.mkAddK(V, 1) : nullptr;
        });
      }});

  // 2. Off-by-one result of sub reg, imm. Scope LiftOnly: the clean
  // Step-2 re-derivation contradicts the stored claim (entailment kill).
  R.push_back(Mutant{
      "sub-imm-off-by-one",
      "sub reg, imm claims dest = dest-imm-1 during Step 1 only",
      MutantScope::LiftOnly,
      [](StepOut &Out, const SymState &, const Instr &I, ExprContext &Ctx) {
        if (I.Mn != Mnemonic::Sub || !safeDest(I) || !I.Ops[1].isImm())
          return;
        rewriteDest(Out, I, [&](const Expr *V) {
          return V && !V->hasFreshLeaf() ? Ctx.mkAddK(V, -1) : nullptr;
        });
      }});

  // 3. cmp with swapped operands: flags of (R - L). The flag abstraction
  // stores L/R exactly; the clean re-check derives the swapped pair and
  // Pred::leq demands syntactic agreement.
  R.push_back(Mutant{
      "cmp-swapped-operands",
      "cmp records flags of (R - L) instead of (L - R)",
      MutantScope::LiftOnly,
      [](StepOut &Out, const SymState &, const Instr &I, ExprContext &) {
        if (I.Mn != Mnemonic::Cmp)
          return;
        rewriteCmpFlags(Out, [&](pred::Pred &P, const pred::FlagState &F) {
          if (F.L != F.R)
            P.setFlagsCmp(F.R, F.L, F.Width);
        });
      }});

  // 4. cmp at the wrong operand width (64 <-> 32).
  R.push_back(Mutant{
      "cmp-width-swapped",
      "cmp records its flag abstraction at the wrong operand width",
      MutantScope::LiftOnly,
      [](StepOut &Out, const SymState &, const Instr &I, ExprContext &) {
        if (I.Mn != Mnemonic::Cmp)
          return;
        rewriteCmpFlags(Out, [&](pred::Pred &P, const pred::FlagState &F) {
          P.setFlagsCmp(F.L, F.R, F.Width == 64 ? 32 : 64);
        });
      }});

  // 5. cmp reg, imm against imm+1.
  R.push_back(Mutant{
      "cmp-imm-off-by-one",
      "cmp reg, imm records flags of (reg - (imm+1))",
      MutantScope::LiftOnly,
      [](StepOut &Out, const SymState &, const Instr &I, ExprContext &Ctx) {
        if (I.Mn != Mnemonic::Cmp || !I.Ops[1].isImm())
          return;
        rewriteCmpFlags(Out, [&](pred::Pred &P, const pred::FlagState &F) {
          if (F.R && !F.R->hasFreshLeaf())
            P.setFlagsCmp(F.L, Ctx.mkAddK(F.R, 1), F.Width);
        });
      }});

  // 6. Dropped memory write, observably: an 8-byte store keeps claiming
  // the cell's *old* value (or zero for a never-written cell). Scope Both:
  // only the machine, which performed the store, can tell. Note a plain
  // cell *removal* would be an unkillable weakening.
  R.push_back(Mutant{
      "store-stale-value",
      "8-byte mov to memory claims the cell still holds its old value",
      MutantScope::Both,
      [](StepOut &Out, const SymState &Pre, const Instr &I,
         ExprContext &Ctx) {
        if (I.Mn != Mnemonic::Mov || !I.Ops[0].isMem() || I.Ops[0].Size != 8)
          return;
        for (Succ &S : Out.Succs) {
          if (S.K != CtrlKind::Fall)
            continue;
          // Find cells that this step introduced or changed and claim
          // their pre-step contents instead.
          std::vector<pred::MemCell> Stale;
          for (const pred::MemCell &C : S.S.P.cells()) {
            const pred::MemCell *Old = Pre.P.findCell(C.Addr, C.Size);
            if (Old && Old->Val == C.Val)
              continue; // unchanged by this step
            const Expr *V = Old ? Old->Val : Ctx.mkConst(0, 64);
            if (V != C.Val)
              Stale.push_back(pred::MemCell{C.Addr, C.Size, V});
          }
          for (const pred::MemCell &C : Stale)
            S.S.P.setCell(C.Addr, C.Size, C.Val);
        }
      }});

  // 7. movzx from a byte claims sign-extension. Kills whenever the loaded
  // byte has its top bit set.
  R.push_back(Mutant{
      "movzx-sext-confusion",
      "movzx r64, byte claims a sign-extended result",
      MutantScope::Both,
      [](StepOut &Out, const SymState &, const Instr &I, ExprContext &Ctx) {
        if (I.Mn != Mnemonic::Movzx || !safeDest(I) || I.Ops[1].Size != 1)
          return;
        rewriteDest(Out, I, [&](const Expr *V) -> const Expr * {
          if (!V || V->hasFreshLeaf())
            return nullptr;
          return Ctx.mkSExt(Ctx.mkTrunc(V, 8), 64);
        });
      }});

  // 8. xor computed as or. Triggered on xor reg, reg with distinct
  // registers (same-register xor folds to the constant 0 and is skipped).
  R.push_back(Mutant{
      "xor-as-or",
      "xor reg, reg claims the bitwise-or of its operands",
      MutantScope::Both,
      [](StepOut &Out, const SymState &, const Instr &I, ExprContext &Ctx) {
        if (I.Mn != Mnemonic::Xor || !safeDest(I) || !I.Ops[1].isReg())
          return;
        rewriteDest(Out, I, [&](const Expr *V) -> const Expr * {
          if (!V || !V->isOp() || V->opcode() != Opcode::Xor)
            return nullptr;
          return Ctx.mkBin(Opcode::Or, V->operand(0), V->operand(1));
        });
      }});

  // 9. External calls claim rax is preserved. The System V ABI (and the
  // concrete Machine) clobbers it; the claim is wrong whenever rax held an
  // evaluable value at the call.
  R.push_back(Mutant{
      "ext-call-preserves-rax",
      "external calls claim rax survives (ABI clobber ignored)",
      MutantScope::Both,
      [](StepOut &Out, const SymState &Pre, const Instr &,
         ExprContext &) {
        const Expr *PreRax = Pre.P.reg64(Reg::RAX);
        if (!PreRax || PreRax->hasFreshLeaf())
          return;
        for (Succ &S : Out.Succs)
          if (S.K == CtrlKind::CallExternal)
            S.S.P.setReg64(Reg::RAX, PreRax);
      }});

  // 10. Conditional jumps lose their fall-through successor. The clean
  // Step-2 re-derivation produces it and finds no edge in the graph.
  R.push_back(Mutant{
      "jcc-drop-fallthrough",
      "conditional jumps drop the not-taken successor during Step 1",
      MutantScope::LiftOnly,
      [](StepOut &Out, const SymState &, const Instr &I, ExprContext &) {
        if (I.Mn != Mnemonic::Jcc || Out.Succs.size() < 2)
          return;
        uint64_t Fall = I.nextAddr();
        for (auto It = Out.Succs.begin(); It != Out.Succs.end(); ++It)
          if (It->K == CtrlKind::Fall && It->NextAddr == Fall) {
            Out.Succs.erase(It);
            break;
          }
      }});

  // 11. Resolved jump tables lose their last (highest-address) target.
  R.push_back(Mutant{
      "jump-table-drop-last",
      "resolved indirect jumps drop their highest target during Step 1",
      MutantScope::LiftOnly,
      [](StepOut &Out, const SymState &, const Instr &I, ExprContext &) {
        if (I.Mn != Mnemonic::Jmp || !I.Ops[0].isMem() ||
            Out.Succs.size() < 2)
          return;
        auto It = std::max_element(
            Out.Succs.begin(), Out.Succs.end(),
            [](const Succ &A, const Succ &B) {
              return A.NextAddr < B.NextAddr;
            });
        Out.Succs.erase(It);
      }});

  // 12. lea claims an address 8 bytes past the real one.
  R.push_back(Mutant{
      "lea-off-by-8",
      "lea claims dest = effective address + 8",
      MutantScope::Both,
      [](StepOut &Out, const SymState &, const Instr &I, ExprContext &Ctx) {
        if (I.Mn != Mnemonic::Lea || !safeDest(I))
          return;
        rewriteDest(Out, I, [&](const Expr *V) {
          return V && !V->hasFreshLeaf() ? Ctx.mkAddK(V, 8) : nullptr;
        });
      }});

  // 13. Regression shape of the historical stale-loop-join-bound
  // Pred::leq soundness bug: a loop-carried range clause survives a join
  // it should have widened, leaving a small stale upper bound on a value
  // that keeps growing. Modeled as: add reg, imm plants "dest <=u 2" on
  // the fall-through invariant. The clean Step-2 re-derivation implies no
  // such bound, and any entry state past the boundary violates it
  // concretely — which is what the incorrectness-witness search confirms
  // (tests/witness_test.cpp and the `--mutant` CLI fixture path).
  R.push_back(Mutant{
      "range-stale-loop-bound",
      "add reg, imm plants a stale range claim dest <=u 2 during Step 1",
      MutantScope::LiftOnly,
      [](StepOut &Out, const SymState &, const Instr &I, ExprContext &) {
        if (I.Mn != Mnemonic::Add || !safeDest(I) || !I.Ops[1].isImm())
          return;
        for (Succ &S : Out.Succs) {
          if (S.K != CtrlKind::Fall)
            continue;
          const Expr *V = S.S.P.reg64(I.Ops[0].R);
          if (!V || V->hasFreshLeaf() || (V->isConst() && V->constVal() <= 2))
            continue; // constant within the bound: claim would be true
          S.S.P.addRange(V, pred::RelOp::ULe, 2);
        }
      }});

  // 14. Regression shape of the historical unsigned-boundary Pred::leq
  // bug: an entailment near the top of the unsigned range decided by a
  // signed comparison, effectively asserting "dest >=u 2^64-256". Modeled
  // as: mov reg, src plants that claim on the fall-through invariant.
  R.push_back(Mutant{
      "range-vacuous-unsigned",
      "mov reg, src plants an unsigned-boundary claim dest >=u -256",
      MutantScope::LiftOnly,
      [](StepOut &Out, const SymState &, const Instr &I, ExprContext &) {
        constexpr uint64_t Boundary = 0xffffffffffffff00ull;
        if (I.Mn != Mnemonic::Mov || !safeDest(I))
          return;
        for (Succ &S : Out.Succs) {
          if (S.K != CtrlKind::Fall)
            continue;
          const Expr *V = S.S.P.reg64(I.Ops[0].R);
          if (!V || V->hasFreshLeaf() ||
              (V->isConst() && V->constVal() >= Boundary))
            continue;
          S.S.P.addRange(V, pred::RelOp::UGe, Boundary);
        }
      }});

  // 15. VSA cheat: a table-resolved indirection redirects one of its
  // targets. Note merely *adding* a phantom target would be an unkillable
  // weakening (the Step-2 checker verifies every derived successor is
  // covered, not that the graph has no extra edges), so the mutant
  // redirects the first target instead — the true edge goes missing, the
  // clean re-derivation produces it, and covered() fails. This is the
  // validate-don't-trust contract of docs/VSA.md under test: a wrong
  // resolution must die in Step 2, never ship as a silent claim.
  R.push_back(Mutant{
      "vsa-phantom-target",
      "VSA-resolved indirections redirect their first jump target and fake "
      "resolved-call effects during Step 1",
      MutantScope::LiftOnly,
      [](StepOut &Out, const SymState &, const Instr &I, ExprContext &Ctx) {
        bool Via = false;
        for (const Succ &S : Out.Succs)
          Via |= S.ViaTable != 0;
        if (!Via)
          return;
        // A resolved call's callee set is validated at the binary level
        // (every callee is itself lifted and proven), so redirecting it is
        // invisible to the per-function theorem; and the return-site
        // vertex joins all per-callee post-states, so a corruption on one
        // successor would be laundered by the join. The checkable phantom
        // claim is an *agreeing* callee effect: every resolved-call
        // successor asserts rax == call site, which the clean Step-2
        // re-derivation (rax == fresh return value) cannot entail.
        for (Succ &S : Out.Succs)
          if (S.ViaTable && S.K == CtrlKind::CallInternal)
            S.S.P.setReg64(Reg::RAX, Ctx.mkConst(I.Addr, 64));
        for (Succ &S : Out.Succs)
          if (S.ViaTable && S.K == CtrlKind::Fall) {
            // Redirect to the indirect jump itself: always a decodable
            // location, and never a table target (unlike I.nextAddr(),
            // which typically IS the first case of a compiler switch).
            S.NextAddr = I.Addr;
            break;
          }
      }});

  return R;
}

} // namespace

const std::vector<Mutant> &mutantRegistry() {
  static const std::vector<Mutant> Registry = buildRegistry();
  return Registry;
}

const Mutant *findMutant(const std::string &Name) {
  for (const Mutant &M : mutantRegistry())
    if (M.Name == Name)
      return &M;
  return nullptr;
}

} // namespace hglift::fuzz
