//===- Sidecar.cpp - Reproducer sidecar naming and writing ----------------===//

#include "fuzz/Sidecar.h"

#include <fstream>

namespace hglift::fuzz {

std::string sidecarStem(const std::string &Dir, const std::string &Tag) {
  return Dir + "/" + SidecarPrefix + Tag;
}

std::string sidecarElfPath(const std::string &Stem) { return Stem + ".elf"; }

std::string sidecarJsonPath(const std::string &Stem) { return Stem + ".json"; }

bool writeSidecarElf(const std::string &Stem,
                     const std::vector<uint8_t> &Bytes) {
  std::ofstream OS(sidecarElfPath(Stem), std::ios::binary);
  if (!OS)
    return false;
  OS.write(reinterpret_cast<const char *>(Bytes.data()),
           static_cast<std::streamsize>(Bytes.size()));
  return static_cast<bool>(OS);
}

bool writeSidecarJson(const std::string &Stem, const std::string &Json) {
  std::ofstream OS(sidecarJsonPath(Stem));
  if (!OS)
    return false;
  OS << Json;
  return static_cast<bool>(OS);
}

} // namespace hglift::fuzz
