//===- Oracle.h - Concrete-execution soundness oracle -----------*- C++ -*-===//
//
// The overapproximation witness of Definition 4.4 as a reusable library:
// run a lifted binary on the concrete Machine from randomized initial
// states and check, at every reached state,
//
//   property 1: some explored vertex invariant at the concrete rip admits
//               the concrete state, and
//   property 2: some symbolic successor of an admitting vertex (computed
//               with the function's own arena executor — the same τ
//               Algorithm 1 ran) admits the concrete post-state.
//
// Expressions with Fresh leaves are havoc (existentially quantified) and
// admit any value; clauses mentioning them are skipped rather than
// decided. Unlike the original differential test, the oracle also decides
// the flag abstraction: a Cmp/Test/Res/ZeroOf FlagState with evaluable
// operands must agree with the machine's ZF/SF/CF/OF (for the subset each
// kind constrains).
//
// Violations are collected, not asserted, so a fuzzing campaign can count
// them, attribute kills, and hand failing binaries to the reducer.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_FUZZ_ORACLE_H
#define HGLIFT_FUZZ_ORACLE_H

#include "expr/Eval.h"
#include "hg/Lifter.h"
#include "semantics/Machine.h"
#include "support/Rng.h"

#include <array>
#include <string>
#include <vector>

namespace hglift::fuzz {

/// Concrete valuation of the symbolic entry frame: the initial register
/// file, the return-address sentinel, and the entry memory snapshot that
/// grounds init-register variables and Deref leaves.
struct OracleCtx {
  std::array<uint64_t, x86::NumGPRs> Init{}; ///< entry register file
  uint64_t RetAddr = 0;                      ///< concrete value of S_entry
  const expr::ExprContext *Ctx = nullptr;
  sem::Machine EntryM; ///< machine snapshot at function entry

  explicit OracleCtx(const elf::BinaryImage &Img) : EntryM(Img) {}

  expr::VarValuation vars() const;
  expr::MemOracle initMem() const;
};

/// Does the concrete state (M.Regs, M's flags, M's memory) satisfy P?
/// Clauses with Fresh leaves are skipped (havoc); bottom admits nothing.
bool stateSatisfies(const pred::Pred &P, const OracleCtx &CC,
                    const sem::Machine &M);

/// One soundness violation found by a concrete walk.
struct OracleViolation {
  uint64_t Function = 0; ///< entry of the violated function
  uint64_t Addr = 0;     ///< concrete rip where the property failed
  std::string Message;
};

struct OracleResult {
  size_t Runs = 0;   ///< concrete walks performed
  size_t States = 0; ///< concrete states checked against property 1
  std::vector<OracleViolation> Violations;

  bool clean() const { return Violations.empty(); }
  void merge(const OracleResult &O) {
    Runs += O.Runs;
    States += O.States;
    Violations.insert(Violations.end(), O.Violations.begin(),
                      O.Violations.end());
  }
};

/// Walk one concrete run through F's Hoare Graph, appending any violations
/// to Out. The walk starts at F.Entry with a random register file drawn
/// from R and follows the machine until control leaves the function.
/// Requires: no StepMutator installed (the oracle is the clean-semantics
/// judge; property 2 re-runs the arena executor).
void walkOnce(const elf::BinaryImage &Img, const hg::FunctionResult &F,
              Rng &R, OracleResult &Out);

/// Run the oracle over every lifted function of R: RunsPerFunction
/// concrete walks each, seeded deterministically from Seed.
OracleResult runOracle(const elf::BinaryImage &Img, const hg::BinaryResult &R,
                       uint64_t Seed, int RunsPerFunction);

} // namespace hglift::fuzz

#endif // HGLIFT_FUZZ_ORACLE_H
