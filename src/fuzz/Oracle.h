//===- Oracle.h - Concrete-execution soundness oracle -----------*- C++ -*-===//
//
// The overapproximation witness of Definition 4.4 as a reusable library:
// run a lifted binary on the concrete Machine from randomized initial
// states and check, at every reached state,
//
//   property 1: some explored vertex invariant at the concrete rip admits
//               the concrete state, and
//   property 2: some symbolic successor of an admitting vertex (computed
//               with the function's own arena executor — the same τ
//               Algorithm 1 ran) admits the concrete post-state.
//
// Expressions with Fresh leaves are havoc (existentially quantified) and
// admit any value; clauses mentioning them are skipped rather than
// decided. Unlike the original differential test, the oracle also decides
// the flag abstraction: a Cmp/Test/Res/ZeroOf FlagState with evaluable
// operands must agree with the machine's ZF/SF/CF/OF (for the subset each
// kind constrains).
//
// Violations are collected, not asserted, so a fuzzing campaign can count
// them, attribute kills, and hand failing binaries to the reducer.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_FUZZ_ORACLE_H
#define HGLIFT_FUZZ_ORACLE_H

#include "expr/Eval.h"
#include "hg/Lifter.h"
#include "semantics/Machine.h"
#include "support/Rng.h"

#include <array>
#include <optional>
#include <string>
#include <vector>

namespace hglift::fuzz {

/// Concrete valuation of the symbolic entry frame: the initial register
/// file, the return-address sentinel, and the entry memory snapshot that
/// grounds init-register variables and Deref leaves.
struct OracleCtx {
  std::array<uint64_t, x86::NumGPRs> Init{}; ///< entry register file
  uint64_t RetAddr = 0;                      ///< concrete value of S_entry
  const expr::ExprContext *Ctx = nullptr;
  sem::Machine EntryM; ///< machine snapshot at function entry

  explicit OracleCtx(const elf::BinaryImage &Img) : EntryM(Img) {}

  expr::VarValuation vars() const;
  expr::MemOracle initMem() const;
};

/// Does the concrete state (M.Regs, M's flags, M's memory) satisfy P?
/// Clauses with Fresh leaves are skipped (havoc); bottom admits nothing.
bool stateSatisfies(const pred::Pred &P, const OracleCtx &CC,
                    const sem::Machine &M);

/// The first clause of P the concrete state falsifies, concretized (every
/// operand pre-evaluated under CC) so the witness layer can record and
/// replay it without symbolic machinery. Kind::Bottom means P is bottom
/// (admits nothing); an unevaluable clause reports the clause with its
/// symbolic text only.
struct SatFailure {
  enum class Kind : uint8_t { Bottom, Reg, Flags, Mem, Range };
  Kind K = Kind::Bottom;
  bool Evaluated = false;  ///< operands evaluated (claim is replayable)
  unsigned RegNum = 0;     ///< Reg: register number
  uint64_t Expect = 0;     ///< Reg/Mem: value the abstraction claims
  uint64_t MemAddr = 0;    ///< Mem: concrete cell address
  uint32_t MemSize = 0;    ///< Mem: cell size in bytes
  pred::RelOp Op = pred::RelOp::Eq; ///< Range
  uint64_t Bound = 0;      ///< Range: clause bound
  uint64_t Value = 0;      ///< Range: concrete value of the bound expr
  std::string FlagsPinned; ///< Flags: subset of "zsco" the state pins
  bool ExpZF = false, ExpSF = false, ExpCF = false, ExpOF = false;
  std::string Clause;      ///< symbolic text of the clause
};

/// stateSatisfies with diagnosis: nullopt iff the state satisfies P,
/// otherwise the first falsified clause. stateSatisfies is this with the
/// explanation discarded — the two cannot drift. RenderClause=false skips
/// building the symbolic clause text (hot paths scan many non-admitting
/// vertices; callers re-explain the designated one with rendering on).
std::optional<SatFailure> stateSatisfiesExplain(const pred::Pred &P,
                                                const OracleCtx &CC,
                                                const sem::Machine &M,
                                                bool RenderClause = true);

/// Explored vertices of F at the given rip (shared with the witness
/// searcher, which replays the same admission judgement).
std::vector<const hg::Vertex *> verticesAt(const hg::FunctionResult &F,
                                           uint64_t Rip);

/// One soundness violation found by a concrete walk.
struct OracleViolation {
  uint64_t Function = 0; ///< entry of the violated function
  uint64_t Addr = 0;     ///< concrete rip where the property failed
  std::string Message;
};

struct OracleResult {
  size_t Runs = 0;   ///< concrete walks performed
  size_t States = 0; ///< concrete states checked against property 1
  std::vector<OracleViolation> Violations;

  bool clean() const { return Violations.empty(); }
  void merge(const OracleResult &O) {
    Runs += O.Runs;
    States += O.States;
    Violations.insert(Violations.end(), O.Violations.begin(),
                      O.Violations.end());
  }
};

/// Rich detail of one walk violation: which of the two properties failed,
/// where, and the first falsified clause of the designated invariant —
/// everything a witness record needs.
struct WalkViolation {
  enum class Kind : uint8_t {
    NoAdmittingVertex,    ///< property 1: no invariant at rip admits M
    SuccessorNotAdmitted, ///< property 2: concrete step not covered
    MissingRetEdge,       ///< property 2: concrete return, no Ret edge
  };
  Kind K = Kind::NoAdmittingVertex;
  uint64_t Addr = 0;    ///< rip the violation is reported at
  uint64_t PrevRip = 0; ///< rip executed just before Addr (0 at entry)
  uint64_t NextRip = 0; ///< SuccessorNotAdmitted: concrete post-state rip
  std::string Message;  ///< same text walkOnce has always reported
  bool HasFail = false; ///< Fail below is meaningful
  SatFailure Fail;      ///< first falsified clause of a designated pred
};

/// Outcome of one deterministic concrete walk from a fixed entry state.
struct WalkResult {
  size_t States = 0;           ///< states checked against property 1
  std::vector<uint64_t> Trace; ///< rips executed before the stop
  bool Violated = false;
  WalkViolation V;
};

/// Walk one concrete run through F's Hoare Graph from a *fixed* initial
/// register file (InitRegs' RSP slot is ignored; setupCall decides the
/// stack) and machine seed, stopping at the first violation. This is the
/// deterministic core: walkOnce draws a random entry state and delegates
/// here. Requires: no StepMutator installed.
WalkResult walkFrom(const elf::BinaryImage &Img, const hg::FunctionResult &F,
                    const std::array<uint64_t, x86::NumGPRs> &InitRegs,
                    uint64_t MachineSeed, int MaxSteps = 300);

/// Walk one concrete run through F's Hoare Graph, appending any violations
/// to Out. The walk starts at F.Entry with a random register file drawn
/// from R and follows the machine until control leaves the function.
/// Requires: no StepMutator installed (the oracle is the clean-semantics
/// judge; property 2 re-runs the arena executor).
void walkOnce(const elf::BinaryImage &Img, const hg::FunctionResult &F,
              Rng &R, OracleResult &Out);

/// Run the oracle over every lifted function of R: RunsPerFunction
/// concrete walks each, seeded deterministically from Seed.
OracleResult runOracle(const elf::BinaryImage &Img, const hg::BinaryResult &R,
                       uint64_t Seed, int RunsPerFunction);

} // namespace hglift::fuzz

#endif // HGLIFT_FUZZ_ORACLE_H
