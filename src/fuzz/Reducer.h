//===- Reducer.h - Delta-debugging reducer for failing binaries -*- C++ -*-===//
//
// Shrinks a binary that exhibits a pipeline failure (Step-2 check failure
// or oracle violation) to a minimal reproducer. The reduction atom is one
// instruction of the clean lift; removal is NOP-patching its bytes in the
// ELF image, which keeps every address stable (jumps, tables and function
// entries are untouched, so the failure's address context survives the
// shrink). Hierarchical greedy delta debugging: whole functions first,
// then halving chunks of the surviving instructions, then single
// instructions to a fixpoint, re-running the caller's failure predicate
// at every step. All decisions are deterministic.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_FUZZ_REDUCER_H
#define HGLIFT_FUZZ_REDUCER_H

#include "elf/Binary.h"
#include "hg/Lifter.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace hglift::fuzz {

/// Re-runs the failing pipeline on candidate ELF bytes; true iff the
/// failure still reproduces. (A candidate that no longer parses or lifts
/// should return false — the reducer then keeps the instructions.)
using FailurePredicate = std::function<bool(const std::vector<uint8_t> &)>;

struct ReduceResult {
  std::vector<uint8_t> Bytes;   ///< reduced ELF (failure still reproduces)
  size_t PredicateCalls = 0;    ///< reducer steps (pipeline re-runs)
  size_t FunctionsLeft = 0;     ///< functions with >= 1 surviving instruction
  size_t InstructionsLeft = 0;  ///< surviving (un-NOPped) instructions
  bool Reproduced = false;      ///< the unreduced input failed at all
  bool Converged = false;       ///< single-instruction fixpoint reached
};

/// Reduce ElfBytes. CleanLift must be the unmutated lift of the same
/// bytes: its graphs supply the instruction atoms (address + length), and
/// the vaddr -> file-offset mapping is derived from the ELF program
/// headers in ElfBytes itself. MaxPredicateCalls bounds the work; when
/// the budget runs out the best reduction so far is returned with
/// Converged = false.
ReduceResult reduceBinary(const std::vector<uint8_t> &ElfBytes,
                          const hg::BinaryResult &CleanLift,
                          const FailurePredicate &Fails,
                          size_t MaxPredicateCalls = 400);

} // namespace hglift::fuzz

#endif // HGLIFT_FUZZ_REDUCER_H
