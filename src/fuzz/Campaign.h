//===- Campaign.h - Seeded soundness fuzzing campaigns ----------*- C++ -*-===//
//
// The `hglift fuzz` engine. A campaign is a deterministic function of its
// seed: every run derives a generator configuration, synthesizes a random
// binary (src/corpus), lifts it (Step 1), re-checks every edge (Step 2),
// and cross-validates with the concrete-execution oracle. With mutation
// testing enabled it then probes every registered semantics mutant until
// the pipeline kills it, attributing the kill to a layer; killed mutants
// found by --reduce-mutant are shrunk by the delta-debugging reducer to a
// replayable on-disk reproducer. The campaign report (--fuzz-json) is
// versioned (diag::FuzzSchemaVersion) and byte-deterministic: wall-clock
// times never appear in it.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_FUZZ_CAMPAIGN_H
#define HGLIFT_FUZZ_CAMPAIGN_H

#include "corpus/Programs.h"
#include "fuzz/Mutants.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace hglift::fuzz {

struct FuzzOptions {
  uint64_t Seed = 1;       ///< --seed: campaign master seed
  unsigned Runs = 25;      ///< --runs: unmutated fuzzing runs
  unsigned MaxInsns = 48;  ///< --max-insns: per-function size cap
  bool MutateSemantics = false;      ///< --mutate-semantics
  std::vector<std::string> MutantFilter; ///< --mutants a,b (empty: all)
  std::string JsonPath;    ///< --fuzz-json FILE
  std::string ReproDir = "."; ///< --repro-dir: where reproducers land
  std::string ReduceMutant;   ///< --reduce-mutant NAME: reducer demo
  double BudgetSeconds = 0;   ///< --budget-seconds: wall cap on the run
                              ///< loop (0 = exactly Runs runs)
  unsigned OracleRuns = 3;    ///< --oracle-runs: concrete walks/function
  unsigned MutantProbes = 16; ///< max probe binaries per mutant
};

/// One fuzzing run (one synthesized binary through the full pipeline).
struct RunRecord {
  unsigned Index = 0;
  uint64_t RunSeed = 0;    ///< drawn from the campaign master Rng
  uint64_t GenSeed = 0;    ///< corpus generator seed derived from RunSeed
  uint64_t OracleSeed = 0; ///< oracle seed derived from RunSeed
  std::string Name;
  bool Library = false;
  std::string Outcome; ///< binary lift outcome name
  size_t Functions = 0, LiftedFns = 0, Instructions = 0;
  size_t Theorems = 0, Proven = 0;
  size_t OracleWalks = 0, OracleStates = 0;
  std::vector<std::string> CheckFailures;
  std::vector<std::string> OracleViolations;
  /// Provenance of the first failure (either layer), 0/empty when clean.
  uint64_t FirstFailFn = 0, FirstFailAddr = 0;

  bool ok() const {
    return CheckFailures.empty() && OracleViolations.empty() &&
           Theorems == Proven;
  }
};

/// Mutation-testing verdict for one registered mutant.
struct MutantOutcome {
  std::string Name, Description, Scope, ExpectedKiller;
  bool Killed = false;
  std::string KilledBy; ///< "step2" or "oracle", "" when it survived
  uint64_t KillSeed = 0;
  unsigned Probes = 0;
  std::string Detail; ///< first failing theorem / violation message
  uint64_t KillFn = 0, KillAddr = 0;
  /// Probe index of the killing subject — with KillSeed, enough to
  /// regenerate the exact killing binary (regenerateSubject). In-memory
  /// only: NOT serialized by writeFuzzJson (the fuzz schema is versioned).
  unsigned KillIndex = 0;
};

/// One delta-debugging reduction (reducer demo or auto-reduce).
struct ReductionRecord {
  std::string Mutant; ///< "" for an unmutated (real) soundness failure
  uint64_t Seed = 0;  ///< the killing run seed the reducer replayed
  size_t Steps = 0;
  size_t FunctionsBefore = 0, InstructionsBefore = 0;
  size_t FunctionsAfter = 0, InstructionsAfter = 0;
  std::string Layer; ///< layer that kills the *reduced* binary
  std::string ReproElf, ReproJson;
  bool Replayed = false; ///< the written reproducer replays the failure
};

struct CampaignResult {
  std::vector<RunRecord> Runs;
  std::vector<MutantOutcome> Mutants;
  std::vector<ReductionRecord> Reductions;
  bool BudgetStopped = false;
  std::string Error; ///< usage-level error (unknown mutant name, I/O)

  size_t checkFailures() const;
  size_t oracleViolations() const;
  size_t mutantsKilled() const;
  /// Campaign verdict: no soundness violations, every probed mutant
  /// killed, every reduction replayable, no usage errors.
  bool success() const;
};

/// The generated subject of one run or probe: the synthesized binary plus
/// the seeds that made it. A (index, run-seed, options) triple always
/// regenerates the same subject; the run loop, the mutant probes, the
/// reducer, and the witness layer's mutation check all rely on this.
struct Subject {
  std::optional<corpus::BuiltBinary> BB;
  bool Library = false;
  uint64_t GenSeed = 0;
  uint64_t OracleSeed = 0;
  std::string Name;
};

/// Regenerate the subject of probe/run (Index, RunSeed) under Opts.
Subject regenerateSubject(unsigned Index, uint64_t RunSeed,
                          const FuzzOptions &Opts);

/// Run a campaign. Progress lines go to Log; the machine-readable result
/// is the return value (render with writeFuzzJson). Serial by design: the
/// mutation hook is process-global.
CampaignResult runCampaign(const FuzzOptions &Opts, std::ostream &Log);

/// Render the versioned, byte-deterministic --fuzz-json report.
void writeFuzzJson(std::ostream &OS, const FuzzOptions &Opts,
                   const CampaignResult &R);

/// Replay a reproducer sidecar written by the reducer: re-run the
/// recorded pipeline (mutant, scope, oracle seed) on the reduced ELF.
/// Returns 0 when the failure reproduces, 1 when it does not, 2 on
/// malformed input.
int replayReproducer(const std::string &JsonPath, std::ostream &Log);

} // namespace hglift::fuzz

#endif // HGLIFT_FUZZ_CAMPAIGN_H
