//===- Mutants.h - Deliberately-wrong semantics variants --------*- C++ -*-===//
//
// Mutation testing of the verifier (§ FUZZING.md): a registry of
// deliberately-wrong x86 semantics, each injected behind the
// sem::StepMutator hook, that the fuzzing campaign must prove the pipeline
// kills. Two scopes:
//
//   LiftOnly — the mutation corrupts Step 1 only; the independent Step-2
//              re-check runs the clean semantics and must object
//              (entailment failure or missing edge).
//   Both     — the mutation corrupts Step 1 AND Step 2 alike, modeling a
//              bug in the shared semantics itself; only the concrete
//              Machine (the independent ground truth) can object, via an
//              oracle property-1 violation.
//
// Every mutation is a deterministic function of (StepOut, pre-state,
// instruction) and produces claims that are *wrong*, never merely weaker:
// a weakened claim (dropped cell, widened register) still overapproximates
// and is undetectable by design — the checker proves derived ⊑ stored and
// the oracle cannot see clauses that are not there.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_FUZZ_MUTANTS_H
#define HGLIFT_FUZZ_MUTANTS_H

#include "semantics/SymExec.h"

#include <functional>
#include <string>
#include <vector>

namespace hglift::fuzz {

enum class MutantScope : uint8_t {
  LiftOnly, ///< corrupt Step 1 only: Step 2 must kill
  Both,     ///< corrupt both steps: the concrete oracle must kill
};

struct Mutant {
  std::string Name;
  std::string Description;
  MutantScope Scope;
  std::function<void(sem::StepOut &, const sem::SymState &,
                     const x86::Instr &, expr::ExprContext &)>
      Apply;

  /// The layer expected to object: "step2" for LiftOnly (the clean
  /// re-check sees the corrupted graph), "oracle" for Both (the checker
  /// shares the bug; only the machine disagrees).
  const char *expectedKiller() const {
    return Scope == MutantScope::LiftOnly ? "step2" : "oracle";
  }
};

/// The fixed registry, in report order.
const std::vector<Mutant> &mutantRegistry();

/// Find a mutant by name, or nullptr.
const Mutant *findMutant(const std::string &Name);

/// RAII bridge installing a Mutant onto the global SymExec hook for the
/// lifetime of the object (restores the previous hook on destruction).
class MutantInstall : sem::StepMutator {
public:
  explicit MutantInstall(const Mutant &M)
      : M(M), Prev(sem::installStepMutator(this)) {}
  ~MutantInstall() override { sem::installStepMutator(Prev); }
  MutantInstall(const MutantInstall &) = delete;
  MutantInstall &operator=(const MutantInstall &) = delete;

  void mutate(sem::StepOut &Out, const sem::SymState &Pre,
              const x86::Instr &I, expr::ExprContext &Ctx) override {
    M.Apply(Out, Pre, I, Ctx);
  }

private:
  const Mutant &M;
  sem::StepMutator *Prev;
};

} // namespace hglift::fuzz

#endif // HGLIFT_FUZZ_MUTANTS_H
