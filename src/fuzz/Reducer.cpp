//===- Reducer.cpp - Delta-debugging reducer for failing binaries ---------===//

#include "fuzz/Reducer.h"

#include <algorithm>
#include <cstring>
#include <map>

namespace hglift::fuzz {

namespace {

/// One reducible atom.
struct Unit {
  uint64_t Addr;
  uint8_t Len;
  uint32_t Func; ///< index into CleanLift.Functions
};

/// Minimal ELF64 program-header walk: vaddr -> file offset for PT_LOAD
/// segments. The corpus emits well-formed little-endian ELF64, which is
/// all the reducer ever patches.
struct SegMap {
  struct Seg {
    uint64_t VAddr, Off, FileSz;
  };
  std::vector<Seg> Segs;

  explicit SegMap(const std::vector<uint8_t> &B) {
    auto U16 = [&](size_t O) {
      return static_cast<uint64_t>(B[O]) | (static_cast<uint64_t>(B[O + 1]) << 8);
    };
    auto U64 = [&](size_t O) {
      uint64_t V = 0;
      for (int I = 7; I >= 0; --I)
        V = (V << 8) | B[O + static_cast<size_t>(I)];
      return V;
    };
    if (B.size() < 0x40)
      return;
    uint64_t PhOff = U64(0x20);
    uint64_t PhEntSz = U16(0x36), PhNum = U16(0x38);
    for (uint64_t I = 0; I < PhNum; ++I) {
      size_t P = static_cast<size_t>(PhOff + I * PhEntSz);
      if (P + 0x38 > B.size())
        break;
      uint32_t Type = static_cast<uint32_t>(U16(P)) |
                      (static_cast<uint32_t>(U16(P + 2)) << 16);
      if (Type != 1) // PT_LOAD
        continue;
      Segs.push_back(Seg{U64(P + 0x10), U64(P + 0x8), U64(P + 0x20)});
    }
  }

  /// File offset of VAddr, or SIZE_MAX when not file-backed.
  size_t offsetOf(uint64_t VAddr, uint64_t Len) const {
    for (const Seg &S : Segs)
      if (VAddr >= S.VAddr && VAddr + Len <= S.VAddr + S.FileSz)
        return static_cast<size_t>(S.Off + (VAddr - S.VAddr));
    return SIZE_MAX;
  }
};

} // namespace

ReduceResult reduceBinary(const std::vector<uint8_t> &ElfBytes,
                          const hg::BinaryResult &CleanLift,
                          const FailurePredicate &Fails,
                          size_t MaxPredicateCalls) {
  ReduceResult Res;
  Res.Bytes = ElfBytes;

  // Collect atoms from the clean lift, deduplicated by address (functions
  // reached both as roots and as callees would otherwise double-count).
  std::map<uint64_t, Unit> ByAddr;
  for (uint32_t FI = 0; FI < CleanLift.Functions.size(); ++FI) {
    const hg::FunctionResult &F = CleanLift.Functions[FI];
    if (F.Outcome != hg::LiftOutcome::Lifted)
      continue;
    for (const auto &[Key, V] : F.Graph.Vertices) {
      if (!V.Explored || !V.Instr.isValid())
        continue;
      auto It = ByAddr.find(Key.Rip);
      if (It == ByAddr.end())
        ByAddr.emplace(Key.Rip,
                       Unit{Key.Rip, static_cast<uint8_t>(V.Instr.Length), FI});
    }
  }
  std::vector<Unit> Units;
  Units.reserve(ByAddr.size());
  for (auto &[A, U] : ByAddr)
    Units.push_back(U);

  SegMap Map(ElfBytes);
  std::vector<bool> Alive(Units.size(), true);

  auto render = [&](const std::vector<bool> &A) {
    std::vector<uint8_t> B = ElfBytes;
    for (size_t I = 0; I < Units.size(); ++I) {
      if (A[I])
        continue;
      size_t Off = Map.offsetOf(Units[I].Addr, Units[I].Len);
      if (Off != SIZE_MAX)
        std::memset(B.data() + Off, 0x90, Units[I].Len); // nop
    }
    return B;
  };

  auto countAlive = [&](const std::vector<bool> &A) {
    return static_cast<size_t>(std::count(A.begin(), A.end(), true));
  };

  // Does the unreduced input fail at all?
  ++Res.PredicateCalls;
  Res.Reproduced = Fails(ElfBytes);
  auto finish = [&]() {
    Res.Bytes = render(Alive);
    Res.InstructionsLeft = countAlive(Alive);
    std::vector<bool> FnAlive(CleanLift.Functions.size(), false);
    for (size_t I = 0; I < Units.size(); ++I)
      if (Alive[I])
        FnAlive[Units[I].Func] = true;
    Res.FunctionsLeft =
        static_cast<size_t>(std::count(FnAlive.begin(), FnAlive.end(), true));
    return Res;
  };
  if (!Res.Reproduced || Units.empty())
    return finish();

  // Try removing the units named by Idxs; keep the removal if the failure
  // still reproduces.
  auto tryRemove = [&](const std::vector<size_t> &Idxs) {
    if (Idxs.empty() || Res.PredicateCalls >= MaxPredicateCalls)
      return false;
    std::vector<bool> Cand = Alive;
    bool Any = false;
    for (size_t I : Idxs)
      if (Cand[I]) {
        Cand[I] = false;
        Any = true;
      }
    if (!Any || countAlive(Cand) == 0)
      return false;
    ++Res.PredicateCalls;
    if (!Fails(render(Cand)))
      return false;
    Alive = std::move(Cand);
    return true;
  };

  // Level 1: whole functions, in index order.
  for (uint32_t FI = 0; FI < CleanLift.Functions.size(); ++FI) {
    std::vector<size_t> Idxs;
    for (size_t I = 0; I < Units.size(); ++I)
      if (Alive[I] && Units[I].Func == FI)
        Idxs.push_back(I);
    tryRemove(Idxs);
  }

  // Levels 2..n: halving chunks of the surviving instruction list, down
  // to single instructions, then single-instruction passes to a fixpoint.
  size_t Sz = std::max<size_t>(1, countAlive(Alive) / 2);
  while (Res.PredicateCalls < MaxPredicateCalls) {
    std::vector<size_t> Live;
    for (size_t I = 0; I < Units.size(); ++I)
      if (Alive[I])
        Live.push_back(I);
    bool Any = false;
    for (size_t At = 0; At < Live.size(); At += Sz) {
      std::vector<size_t> Chunk(
          Live.begin() + static_cast<ptrdiff_t>(At),
          Live.begin() +
              static_cast<ptrdiff_t>(std::min(At + Sz, Live.size())));
      Any |= tryRemove(Chunk);
    }
    if (Sz == 1) {
      if (!Any) {
        Res.Converged = true;
        break;
      }
    } else {
      Sz = std::max<size_t>(1, Sz / 2);
    }
  }
  return finish();
}

} // namespace hglift::fuzz
