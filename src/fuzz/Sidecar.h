//===- Sidecar.h - Reproducer sidecar naming and writing --------*- C++ -*-===//
//
// Every replayable artifact this project emits — fuzz-campaign reproducers
// and incorrectness witnesses alike — is a sidecar *pair*: a raw ELF image
// next to a JSON descriptor that references it by basename. The pair
// convention (one stem, ".elf" + ".json", "fuzz_repro_" prefix so replay
// tooling and .gitignore rules match both producers) used to be duplicated
// across the campaign's two writer sites; this header is the single
// authority so witness sidecars cannot drift from campaign sidecars.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_FUZZ_SIDECAR_H
#define HGLIFT_FUZZ_SIDECAR_H

#include <cstdint>
#include <string>
#include <vector>

namespace hglift::fuzz {

/// The common basename prefix of every reproducer sidecar.
inline constexpr const char *SidecarPrefix = "fuzz_repro_";

/// Dir + "/" + SidecarPrefix + Tag — the stem both files of a pair share.
std::string sidecarStem(const std::string &Dir, const std::string &Tag);

/// "<stem>.elf" / "<stem>.json".
std::string sidecarElfPath(const std::string &Stem);
std::string sidecarJsonPath(const std::string &Stem);

/// Write the raw ELF half of a pair. Returns false on I/O failure.
bool writeSidecarElf(const std::string &Stem,
                     const std::vector<uint8_t> &Bytes);

/// Write the JSON half of a pair (the caller renders the document; each
/// producer has its own schema, keyed by its *_schema_version field).
bool writeSidecarJson(const std::string &Stem, const std::string &Json);

} // namespace hglift::fuzz

#endif // HGLIFT_FUZZ_SIDECAR_H
