//===- Z3Backend.h - Z3-backed relation queries ----------------*- C++ -*-===//
//
// Optional backend answering residual necessarily-relation queries with
// Z3's bit-vector theory, as the paper does. Expressions translate
// "directly to Z3's bit-vector representations, meaning no information is
// lost in the conversion" (§3.2): variables and unresolved memory reads
// become fresh BV constants, range clauses become assertions.
//
// Compiled only when HGLIFT_WITH_Z3 is set; everything else in the solver
// works without it (the ablation bench measures the difference).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SMT_Z3BACKEND_H
#define HGLIFT_SMT_Z3BACKEND_H

#include "pred/Pred.h"
#include "smt/Region.h"

namespace hglift::smt {

class Z3Backend {
public:
  Z3Backend();
  ~Z3Backend();

  /// MustAlias / MustSep / MustEnc01 / MustEnc10 if provable, else Unknown.
  ///
  /// Persistent selects the batched-assertion mode of the portfolio's
  /// tier 2: one long-lived solver holds the predicate's range clauses as
  /// base assertions, keyed on Pred::version(). Consecutive queries under
  /// the same version reuse the asserted base (push/pop frames carry only
  /// the per-probe overlap conditions); a version change resets and
  /// re-asserts. Equal stamps guarantee identical clause content, so reuse
  /// is exact, never heuristic. Persistent=false is the historical
  /// throwaway-solver path.
  MemRel query(const Region &R0, const Region &R1, const pred::Pred &P,
               const expr::ExprContext &Ctx, bool Persistent = false);

  /// Is E0 == E1 valid under P?
  bool mustEqual(const expr::Expr *E0, const expr::Expr *E1,
                 const pred::Pred &P, const expr::ExprContext &Ctx);

  uint64_t numQueries() const { return Queries; }

  /// Times the bounded expression-translation cache was cleared because it
  /// reached its cap (checked between top-level queries, so in-flight
  /// z3::expr references are never dropped mid-translation).
  uint64_t numEvictions() const { return Evictions; }

  /// Persistent-mode queries that reused the already-asserted base (same
  /// Pred version as the previous query) instead of re-asserting it.
  uint64_t numCtxReuses() const { return CtxReuses; }
  /// Persistent-mode base re-assertions (version changed, or first use).
  uint64_t numCtxResets() const { return CtxResets; }

private:
  /// Enforce the translation-cache bound; called at query entry.
  void boundTransCache();

  struct Impl;
  Impl *I;
  uint64_t Queries = 0;
  uint64_t Evictions = 0;
  uint64_t CtxReuses = 0;
  uint64_t CtxResets = 0;
};

} // namespace hglift::smt

#endif // HGLIFT_SMT_Z3BACKEND_H
