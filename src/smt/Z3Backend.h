//===- Z3Backend.h - Z3-backed relation queries ----------------*- C++ -*-===//
//
// Optional backend answering residual necessarily-relation queries with
// Z3's bit-vector theory, as the paper does. Expressions translate
// "directly to Z3's bit-vector representations, meaning no information is
// lost in the conversion" (§3.2): variables and unresolved memory reads
// become fresh BV constants, range clauses become assertions.
//
// Compiled only when HGLIFT_WITH_Z3 is set; everything else in the solver
// works without it (the ablation bench measures the difference).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SMT_Z3BACKEND_H
#define HGLIFT_SMT_Z3BACKEND_H

#include "pred/Pred.h"
#include "smt/Region.h"

namespace hglift::smt {

class Z3Backend {
public:
  Z3Backend();
  ~Z3Backend();

  /// MustAlias / MustSep / MustEnc01 / MustEnc10 if provable, else Unknown.
  MemRel query(const Region &R0, const Region &R1, const pred::Pred &P,
               const expr::ExprContext &Ctx);

  /// Is E0 == E1 valid under P?
  bool mustEqual(const expr::Expr *E0, const expr::Expr *E1,
                 const pred::Pred &P, const expr::ExprContext &Ctx);

  uint64_t numQueries() const { return Queries; }

  /// Times the bounded expression-translation cache was cleared because it
  /// reached its cap (checked between top-level queries, so in-flight
  /// z3::expr references are never dropped mid-translation).
  uint64_t numEvictions() const { return Evictions; }

private:
  /// Enforce the translation-cache bound; called at query entry.
  void boundTransCache();

  struct Impl;
  Impl *I;
  uint64_t Queries = 0;
  uint64_t Evictions = 0;
};

} // namespace hglift::smt

#endif // HGLIFT_SMT_Z3BACKEND_H
