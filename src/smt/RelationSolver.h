//===- RelationSolver.h - Deciding necessarily-relations -------*- C++ -*-===//
//
// Decides the necessarily-relations of Definition 3.6 between symbolic
// regions, given the current predicate. Queries go through one entry
// point, decide(), behind which sits a tiered portfolio:
//
//   tier 0  syntactic discharge: identical regions, or a linear difference
//           that is constant (this decides most queries);
//   tier 1  interval/constant reasoning over the predicate's range clauses
//           (Pred::intervalOfForm on the linearized difference — this
//           resolves jump-table-index vs. return-address separation);
//   -----   allocation-class assumptions: a stack-frame address (rsp0-
//           based) and a global (numeric) or external (heap) address are
//           assumed separate — the paper's "implicit assumptions" (§5.2),
//           surfaced as explicit proof obligations (not a proof tier);
//   tier 2  Z3 with a persistent, batched-assertion context, exactly as
//           the paper uses Z3 ("the SMT solver Z3 is used to establish
//           whether these necessarily-relations hold for symbolic
//           addresses"). An admission filter skips round trips that
//           provably (or, for the Eq-guarded free-variable rule,
//           empirically) cannot yield a definite relation; a skipped
//           query degrades to Unknown, which is always sound.
//
// Config::Portfolio = false is the ablation switch back to the historical
// single-pass path: no linearization memo, no admission filter, a fresh Z3
// solver per query. bench_shard measures what the portfolio buys; the
// differential harness (tests/solver_portfolio_test.cpp) replays recorded
// queries through each tier in isolation and checks that no cheap tier
// ever contradicts Z3.
//
// Results are cached. The cache key is the exact query identity
//   (addr0, size0, addr1, size1, Pred::version())
// where the addresses are interned Expr pointers (pointer equality ==
// structural equality within one ExprContext; Expr::hashValue() is the
// key's hash function) and the version is the predicate's monotone stamp.
// Invalidation rule: any clause mutation re-stamps the Pred from a
// process-wide counter, so entries keyed under the old stamp can never be
// hit again — mutation IS invalidation. When the map reaches Config::
// CacheCap, stale-version entries are swept (counted in Stats::
// CacheInvalidated); if the sweep frees nothing, the still-live entries
// are cleared (counted separately in Stats::CacheEvicted). mustEqual() is
// memoized the same way. Counters are mirrored into LiftStats for
// --stats-json.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SMT_RELATIONSOLVER_H
#define HGLIFT_SMT_RELATIONSOLVER_H

#include "pred/Pred.h"
#include "smt/Region.h"
#include "support/LiftStats.h"

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace hglift::smt {

/// An assumption the solver had to make; surfaced as a proof obligation in
/// the lifted output (§7: "assumptions are enumerated explicitly").
struct Assumption {
  std::string Text;
};

/// Allocation class of an address, for the separation assumptions.
enum class AllocClass : uint8_t {
  StackFrame, ///< rsp0 + k
  Global,     ///< numeric constant (inside the binary's sections)
  Heap,       ///< based on an External variable (e.g. malloc result)
  ArgPtr,     ///< single initial-register base (pointer argument) + k
  Other,      ///< anything else
};

AllocClass classifyAddr(const expr::Expr *Addr, const expr::ExprContext &Ctx);
/// Same classification from an already-computed linear form (the portfolio
/// path linearizes once and reuses the form everywhere).
AllocClass classifyForm(const expr::LinearForm &LF,
                        const expr::ExprContext &Ctx);

/// Which layer of the portfolio decided a query. Numeric values are stable
/// (trace events and the query ring store them as bytes).
enum class Tier : uint8_t {
  Syntactic = 0,  ///< tier 0
  Interval = 1,   ///< tier 1
  AllocClass = 2, ///< assumption layer (between tiers 1 and 2)
  Z3 = 3,         ///< tier 2
  None = 4,       ///< fell through every tier (relation is Unknown)
};

const char *tierName(Tier T);

class Z3Backend; // hides <z3++.h> from every other translation unit

class RelationSolver {
public:
  struct Config {
    bool UseZ3 = true;
    /// Assume stack/global/heap allocation classes are mutually separate
    /// (recorded as proof obligations). Turning this off is the rigorous
    /// but mostly-useless mode discussed in §1.
    bool AllocClassAssumptions = true;
    /// The tiered portfolio: linearization memo, direct linear-form
    /// difference arithmetic, strengthened tier-1 bounds, the tier-2
    /// admission filter, and the persistent Z3 context. Off is the
    /// historical single-pass path (ablation mode of bench_shard).
    bool Portfolio = true;
    /// Record every *computed* decision (query, a copy of the predicate,
    /// result, deciding tier) for differential replay. Off by default —
    /// predicate copies are cheap but not free.
    bool LogQueries = false;
    /// Cap on the query log (oldest entries are simply not recorded past
    /// the cap; the differential harness replays a bounded corpus).
    size_t LogCap = 1u << 16;
    /// Memoize relate()/mustEqual() per (addresses, sizes, Pred version).
    /// Off is the ablation mode of bench_step1_hotpath.
    bool EnableCache = true;
    /// Combined entry cap for the two memo maps. At the cap, entries whose
    /// version differs from the current query's are swept first; if the
    /// sweep frees nothing (single hot predicate) the maps are cleared.
    size_t CacheCap = 1u << 16;
  };

  /// One decide() outcome: the relation plus where it came from.
  struct Decision {
    MemRel Rel = MemRel::Unknown;
    Tier DecidedBy = Tier::None;
    bool CacheHit = false;
  };

  explicit RelationSolver(expr::ExprContext &Ctx)
      : RelationSolver(Ctx, Config()) {}
  RelationSolver(expr::ExprContext &Ctx, Config Cfg);
  ~RelationSolver();

  /// The necessarily-relation between R0 and R1 under P, with provenance.
  /// This is the single entry point every layer of the portfolio sits
  /// behind; relate() is a convenience wrapper returning just the MemRel.
  Decision decide(const Region &R0, const Region &R1, const pred::Pred &P);

  MemRel relate(const Region &R0, const Region &R1, const pred::Pred &P) {
    return decide(R0, R1, P).Rel;
  }

  /// Replay a query through ONE tier in isolation (the differential
  /// harness). Bypasses the cache, the stats counters, the assumption log
  /// and — for Tier::Z3 — the admission filter and the empty-ranges skip,
  /// so a forced Z3 replay is the trusted oracle the cheap tiers are
  /// compared against. Tier::AllocClass applies the assumption pairs
  /// without recording obligations; Tier::None returns Unknown.
  Decision decideWithTierOnly(const Region &R0, const Region &R1,
                              const pred::Pred &P, Tier Only);

  /// Is E0 == E1 necessarily (used for alias checks on same-size regions)?
  bool mustEqual(const expr::Expr *E0, const expr::Expr *E1,
                 const pred::Pred &P);

  const std::vector<Assumption> &assumptions() const { return Assumptions; }
  void clearAssumptions() { Assumptions.clear(); }

  /// One recorded (computed) decision, for differential replay. The
  /// predicate is copied at query time — cheap (interned pointers), and
  /// the copy keeps its version stamp, so replays see the exact clause
  /// set. Expressions stay valid as long as the owning ExprContext lives
  /// (the LiftArena a FunctionResult keeps alive).
  struct LoggedQuery {
    const expr::Expr *A0 = nullptr, *A1 = nullptr;
    uint32_t S0 = 0, S1 = 0;
    pred::Pred P;
    MemRel Rel = MemRel::Unknown;
    Tier DecidedBy = Tier::None;
  };
  const std::vector<LoggedQuery> &queryLog() const { return Log; }

  /// The most recent relate() decisions that were actually *computed*
  /// (cache hits re-deliver a recorded decision and are not re-recorded),
  /// rendered newest-first: "[rax,8] vs [rsp0-0x10,8] -> separate
  /// (interval)". This is the relation-query chain stamped into
  /// diagnostic provenance (diag::Provenance::QueryChain). The ring
  /// stores PODs; rendering happens only here, on the cold path.
  std::vector<std::string> recentQueries(size_t Max = 4) const;

  /// Statistics for the ablation bench. The per-tier hit counters count
  /// *computed* decisions only; cache hits re-deliver a decision without
  /// re-attributing it.
  struct Stats {
    uint64_t Queries = 0;
    /// Tier 0: syntactic identity or constant linear difference.
    uint64_t SyntacticHits = 0;
    /// Tier 1: interval reasoning decided it.
    uint64_t IntervalHits = 0;
    /// Assumption layer: distinct allocation classes.
    uint64_t ClassAssumptionHits = 0;
    /// Tier-2 round trips actually made (includes Unknown answers).
    uint64_t Z3Queries = 0;
    /// Tier 2 decided it (Z3 returned a definite relation).
    uint64_t Z3Hits = 0;
    /// Tier-2 round trips the admission filter skipped (Portfolio only;
    /// includes the empty-ranges skip, which the legacy path also takes
    /// but does not count).
    uint64_t Tier2Skipped = 0;
    /// Queries that fell through every tier (answered Unknown).
    uint64_t Fallthroughs = 0;
    /// relate()/mustEqual() answered from the version-keyed memo.
    uint64_t CacheHits = 0;
    /// Cache enabled but the key was absent (answered uncached, inserted).
    uint64_t CacheMisses = 0;
    /// Stale-version entries dropped by the sweep at CacheCap (their Pred
    /// was mutated; the keys could never be hit again).
    uint64_t CacheInvalidated = 0;
    /// Live-version entries cleared because the sweep freed nothing at
    /// the cap (single hot predicate); these were still hittable.
    uint64_t CacheEvicted = 0;
    /// Wall-clock seconds spent computing uncached decisions — the
    /// portfolio's "query time". Cache hits cost the same in every mode
    /// and are excluded.
    double DecideSeconds = 0;
    /// Z3 expression-translation cache evictions (bounded cache in the
    /// backend; mirrored here so --stats-json can report it).
    uint64_t Z3TransEvictions = 0;
    /// Persistent-context reuses: tier-2 queries whose base assertions
    /// (the predicate's range clauses) were already asserted because the
    /// previous query saw the same Pred version (mirrored from the
    /// backend).
    uint64_t Z3CtxReuses = 0;
  };
  const Stats &stats() const { return S; }

  /// Optional per-function stats sink: mirrors Queries/Z3Queries into the
  /// lifting engine's LiftStats. Pass nullptr to detach. Not synchronized —
  /// one solver, one lifting thread.
  void setLiftStats(LiftStats *Sink) { LS = Sink; }

private:
  /// The tier ladder (portfolio or legacy single-pass, per Config).
  Decision decideUncached(const Region &R0, const Region &R1,
                          const pred::Pred &P);
  Decision decidePortfolio(const Region &R0, const Region &R1,
                           const pred::Pred &P);
  Decision decideLegacy(const Region &R0, const Region &R1,
                        const pred::Pred &P);
  /// decideUncached plus bookkeeping: per-tier counters, decide-time
  /// accounting, the query ring, the query log, and the solver_call trace
  /// event.
  Decision decideRecorded(const Region &R0, const Region &R1,
                          const pred::Pred &P);

  /// Memoized linearization (portfolio only; bounded).
  const expr::LinearForm &linearizeMemo(const expr::Expr *E);
  /// Sorted leaf atoms (Vars and Derefs, Derefs opaque) of E (memoized).
  const std::vector<const expr::Expr *> &leavesOf(const expr::Expr *E);

  /// Tier-2 admission filter (portfolio only): true if the Z3 round trip
  /// is skipped. See the .cpp for the two rules and their justification.
  bool admitSkipsZ3(const Region &R0, const Region &R1,
                    const expr::LinearForm &L0, const expr::LinearForm &L1,
                    const pred::Pred &P);

  /// Evict stale-version entries (or clear) once the maps reach CacheCap.
  void boundCaches(uint64_t LiveVer);

  /// Exact query identity: interned address pointers + sizes + the
  /// predicate's version stamp. Pointer equality is structural equality
  /// within one ExprContext; hashValue() only drives bucketing.
  struct RelKey {
    const expr::Expr *A0, *A1;
    uint32_t S0, S1;
    uint64_t Ver;
    bool operator==(const RelKey &O) const = default;
  };
  struct RelKeyHash {
    size_t operator()(const RelKey &K) const;
  };
  struct EqKey {
    const expr::Expr *E0, *E1;
    uint64_t Ver;
    bool operator==(const EqKey &O) const = default;
  };
  struct EqKeyHash {
    size_t operator()(const EqKey &K) const;
  };
  /// Cached decision: relation + the tier that computed it (so cache hits
  /// keep their provenance).
  struct CachedRel {
    MemRel Rel;
    Tier DecidedBy;
  };

  /// One computed decide() decision, kept as PODs (no strings on the hot
  /// path; recentQueries() renders lazily). Layer = uint8_t(Tier).
  struct QueryRec {
    const expr::Expr *A0 = nullptr, *A1 = nullptr;
    uint32_t S0 = 0, S1 = 0;
    MemRel Res = MemRel::Unknown;
    uint8_t Layer = 0;
  };
  static constexpr size_t QueryRingSize = 8;

  /// Per-Pred-version summary consulted by the admission filter: the
  /// sorted leaf atoms of every range-clause LHS, plus whether any Eq
  /// clause is present. Memoized because one version answers many queries.
  struct RangeInfo {
    std::vector<const expr::Expr *> Leaves;
    bool HasEq = false;
  };
  const RangeInfo &rangeInfoOf(const pred::Pred &P);

  expr::ExprContext &Ctx;
  Config Cfg;
  Stats S;
  LiftStats *LS = nullptr;
  std::vector<Assumption> Assumptions;
  std::vector<LoggedQuery> Log;
  QueryRec Recent[QueryRingSize];
  uint64_t RecentCount = 0; ///< total recorded; ring index = count % size
  std::unique_ptr<Z3Backend> Z3;
  std::unordered_map<RelKey, CachedRel, RelKeyHash> RelCache;
  std::unordered_map<EqKey, bool, EqKeyHash> EqCache;
  /// Portfolio memos, all bounded by clearing at MemoCap entries. Keyed on
  /// interned pointers, so they never go stale within one arena.
  static constexpr size_t MemoCap = 1u << 13;
  std::unordered_map<const expr::Expr *, expr::LinearForm> LinMemo;
  std::unordered_map<const expr::Expr *, std::vector<const expr::Expr *>>
      LeafMemo;
  std::unordered_map<uint64_t, RangeInfo> RangeInfoMemo;
};

} // namespace hglift::smt

#endif // HGLIFT_SMT_RELATIONSOLVER_H
