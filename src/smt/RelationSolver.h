//===- RelationSolver.h - Deciding necessarily-relations -------*- C++ -*-===//
//
// Decides the necessarily-relations of Definition 3.6 between symbolic
// regions, given the current predicate. Layered:
//
//   1. a syntactic/linear core: linearize both addresses; if the difference
//      is constant the relation is decided exactly; otherwise interval
//      reasoning over the predicate's range clauses applies (this resolves
//      jump-table-index vs. return-address separation);
//   2. allocation-class reasoning: a stack-frame address (rsp0-based) and a
//      global (numeric) or external (heap) address are assumed separate —
//      the paper's "implicit assumptions" (§5.2), which we surface as
//      explicit proof obligations;
//   3. an optional Z3 backend for residual queries, exactly as the paper
//      uses Z3 ("the SMT solver Z3 is used to establish whether these
//      necessarily-relations hold for symbolic addresses").
//
// Results are cached. The cache key is the exact query identity
//   (addr0, size0, addr1, size1, Pred::version())
// where the addresses are interned Expr pointers (pointer equality ==
// structural equality within one ExprContext; Expr::hashValue() is the
// key's hash function) and the version is the predicate's monotone stamp.
// Invalidation rule: any clause mutation re-stamps the Pred from a
// process-wide counter, so entries keyed under the old stamp can never be
// hit again — mutation IS invalidation. When the map reaches Config::
// CacheCap, entries whose stamp differs from the current query's are swept
// (counted in Stats::CacheInvalidated); mustEqual() is memoized the same
// way. Hit/miss/invalidation counters live in Stats and are mirrored into
// LiftStats for --stats-json.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_SMT_RELATIONSOLVER_H
#define HGLIFT_SMT_RELATIONSOLVER_H

#include "pred/Pred.h"
#include "smt/Region.h"
#include "support/LiftStats.h"

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace hglift::smt {

/// An assumption the solver had to make; surfaced as a proof obligation in
/// the lifted output (§7: "assumptions are enumerated explicitly").
struct Assumption {
  std::string Text;
};

/// Allocation class of an address, for the separation assumptions.
enum class AllocClass : uint8_t {
  StackFrame, ///< rsp0 + k
  Global,     ///< numeric constant (inside the binary's sections)
  Heap,       ///< based on an External variable (e.g. malloc result)
  ArgPtr,     ///< single initial-register base (pointer argument) + k
  Other,      ///< anything else
};

AllocClass classifyAddr(const expr::Expr *Addr, const expr::ExprContext &Ctx);

class Z3Backend; // hides <z3++.h> from every other translation unit

class RelationSolver {
public:
  struct Config {
    bool UseZ3 = true;
    /// Assume stack/global/heap allocation classes are mutually separate
    /// (recorded as proof obligations). Turning this off is the rigorous
    /// but mostly-useless mode discussed in §1.
    bool AllocClassAssumptions = true;
    /// Memoize relate()/mustEqual() per (addresses, sizes, Pred version).
    /// Off is the ablation mode of bench_step1_hotpath.
    bool EnableCache = true;
    /// Combined entry cap for the two memo maps. At the cap, entries whose
    /// version differs from the current query's are swept first; if the
    /// sweep frees nothing (single hot predicate) the maps are cleared.
    size_t CacheCap = 1u << 16;
  };

  explicit RelationSolver(expr::ExprContext &Ctx)
      : RelationSolver(Ctx, Config()) {}
  RelationSolver(expr::ExprContext &Ctx, Config Cfg);
  ~RelationSolver();

  /// The necessarily-relation between R0 and R1 under P.
  MemRel relate(const Region &R0, const Region &R1, const pred::Pred &P);

  /// Is E0 == E1 necessarily (used for alias checks on same-size regions)?
  bool mustEqual(const expr::Expr *E0, const expr::Expr *E1,
                 const pred::Pred &P);

  const std::vector<Assumption> &assumptions() const { return Assumptions; }
  void clearAssumptions() { Assumptions.clear(); }

  /// The most recent relate() decisions that were actually *computed*
  /// (cache hits re-deliver a recorded decision and are not re-recorded),
  /// rendered newest-first: "[rax,8] vs [rsp0-0x10,8] -> separate
  /// (interval)". This is the relation-query chain stamped into
  /// diagnostic provenance (diag::Provenance::QueryChain). The ring
  /// stores PODs; rendering happens only here, on the cold path.
  std::vector<std::string> recentQueries(size_t Max = 4) const;

  /// Statistics for the ablation bench.
  struct Stats {
    uint64_t Queries = 0;
    uint64_t SyntacticHits = 0;
    uint64_t IntervalHits = 0;
    uint64_t ClassAssumptionHits = 0;
    uint64_t Z3Queries = 0;
    uint64_t Z3Hits = 0;
    /// relate()/mustEqual() answered from the version-keyed memo.
    uint64_t CacheHits = 0;
    /// Cache enabled but the key was absent (answered uncached, inserted).
    uint64_t CacheMisses = 0;
    /// Entries dropped by the stale-version sweep at CacheCap.
    uint64_t CacheInvalidated = 0;
    /// Z3 expression-translation cache evictions (bounded cache in the
    /// backend; mirrored here so --stats-json can report it).
    uint64_t Z3TransEvictions = 0;
  };
  const Stats &stats() const { return S; }

  /// Optional per-function stats sink: mirrors Queries/Z3Queries into the
  /// lifting engine's LiftStats. Pass nullptr to detach. Not synchronized —
  /// one solver, one lifting thread.
  void setLiftStats(LiftStats *Sink) { LS = Sink; }

private:
  MemRel relateUncached(const Region &R0, const Region &R1,
                        const pred::Pred &P);
  /// relateUncached plus provenance: infers which layer decided (by
  /// diffing the per-layer counters), records the decision in the query
  /// ring, and emits a solver_call trace event when tracing is on.
  MemRel relateRecorded(const Region &R0, const Region &R1,
                        const pred::Pred &P);
  MemRel relateByConstantDelta(int64_t Delta, uint32_t S0, uint32_t S1);

  /// Evict stale-version entries (or clear) once the maps reach CacheCap.
  void boundCaches(uint64_t LiveVer);

  /// Exact query identity: interned address pointers + sizes + the
  /// predicate's version stamp. Pointer equality is structural equality
  /// within one ExprContext; hashValue() only drives bucketing.
  struct RelKey {
    const expr::Expr *A0, *A1;
    uint32_t S0, S1;
    uint64_t Ver;
    bool operator==(const RelKey &O) const = default;
  };
  struct RelKeyHash {
    size_t operator()(const RelKey &K) const;
  };
  struct EqKey {
    const expr::Expr *E0, *E1;
    uint64_t Ver;
    bool operator==(const EqKey &O) const = default;
  };
  struct EqKeyHash {
    size_t operator()(const EqKey &K) const;
  };

  /// One computed relate() decision, kept as PODs (no strings on the hot
  /// path; recentQueries() renders lazily). Layer: which solver layer
  /// decided (see LayerNames in the .cpp).
  struct QueryRec {
    const expr::Expr *A0 = nullptr, *A1 = nullptr;
    uint32_t S0 = 0, S1 = 0;
    MemRel Res = MemRel::Unknown;
    uint8_t Layer = 0;
  };
  static constexpr size_t QueryRingSize = 8;

  expr::ExprContext &Ctx;
  Config Cfg;
  Stats S;
  LiftStats *LS = nullptr;
  std::vector<Assumption> Assumptions;
  QueryRec Recent[QueryRingSize];
  uint64_t RecentCount = 0; ///< total recorded; ring index = count % size
  std::unique_ptr<Z3Backend> Z3;
  std::unordered_map<RelKey, MemRel, RelKeyHash> RelCache;
  std::unordered_map<EqKey, bool, EqKeyHash> EqCache;
};

} // namespace hglift::smt

#endif // HGLIFT_SMT_RELATIONSOLVER_H
