#ifdef HGLIFT_WITH_Z3

#include "smt/Z3Backend.h"

#include <optional>
#include <unordered_map>
#include <z3++.h>

namespace hglift::smt {

using expr::Expr;
using expr::ExprContext;
using expr::ExprKind;
using expr::Opcode;
using pred::RangeClause;
using pred::RelOp;

struct Z3Backend::Impl {
  z3::context C;
  /// Expression-translation memo. Bounded: boundTransCache() clears it
  /// between top-level queries once it exceeds MaxCacheEntries, so a long
  /// lifting run over many functions cannot grow it without limit.
  std::unordered_map<const Expr *, z3::expr> Cache;
  static constexpr size_t MaxCacheEntries = 4096;
  uint64_t NameCounter = 0;
  /// Persistent-mode state: one long-lived solver whose base assertions
  /// are the range clauses of the Pred version in PersistVer. PersistValid
  /// goes false on any exception that may have left the solver with an
  /// unbalanced frame; the next persistent query then resets.
  std::optional<z3::solver> Persist;
  uint64_t PersistVer = ~uint64_t(0);
  bool PersistValid = false;

  z3::expr boolToBv1(const z3::expr &B) {
    return z3::ite(B, C.bv_val(1, 1), C.bv_val(0, 1));
  }

  z3::expr translate(const Expr *E, const ExprContext &Ctx) {
    auto It = Cache.find(E);
    if (It != Cache.end())
      return It->second;
    z3::expr R = translateUncached(E, Ctx);
    Cache.emplace(E, R);
    return R;
  }

  z3::expr translateUncached(const Expr *E, const ExprContext &Ctx) {
    unsigned W = E->width();
    switch (E->kind()) {
    case ExprKind::Const:
      return C.bv_val(static_cast<uint64_t>(E->constVal()), W);
    case ExprKind::Var: {
      std::string Name = "v_" + Ctx.varInfo(E->varId()).Name + "_" +
                         std::to_string(W);
      return C.bv_const(Name.c_str(), W);
    }
    case ExprKind::Deref: {
      std::string Name = "deref_" + std::to_string(
                                        reinterpret_cast<uintptr_t>(E));
      return C.bv_const(Name.c_str(), W);
    }
    case ExprKind::Op:
      break;
    }

    const auto &Ops = E->operands();
    auto A = [&](unsigned I) { return translate(Ops[I], Ctx); };

    switch (E->opcode()) {
    case Opcode::Add:
      return A(0) + A(1);
    case Opcode::Sub:
      return A(0) - A(1);
    case Opcode::Mul:
      return A(0) * A(1);
    case Opcode::UDiv:
      return z3::udiv(A(0), A(1));
    case Opcode::URem:
      return z3::urem(A(0), A(1));
    case Opcode::SDiv:
      return A(0) / A(1);
    case Opcode::SRem:
      return z3::srem(A(0), A(1));
    case Opcode::And:
      return A(0) & A(1);
    case Opcode::Or:
      return A(0) | A(1);
    case Opcode::Xor:
      return A(0) ^ A(1);
    case Opcode::Shl:
      return z3::shl(A(0), z3::urem(A(1), C.bv_val(W, W)));
    case Opcode::LShr:
      return z3::lshr(A(0), z3::urem(A(1), C.bv_val(W, W)));
    case Opcode::AShr:
      return z3::ashr(A(0), z3::urem(A(1), C.bv_val(W, W)));
    case Opcode::Not:
      return ~A(0);
    case Opcode::Neg:
      return -A(0);
    case Opcode::ZExt:
      return z3::zext(A(0), W - Ops[0]->width());
    case Opcode::SExt:
      return z3::sext(A(0), W - Ops[0]->width());
    case Opcode::Trunc:
      return A(0).extract(W - 1, 0);
    case Opcode::Eq:
      return boolToBv1(A(0) == A(1));
    case Opcode::Ne:
      return boolToBv1(A(0) != A(1));
    case Opcode::ULt:
      return boolToBv1(z3::ult(A(0), A(1)));
    case Opcode::ULe:
      return boolToBv1(z3::ule(A(0), A(1)));
    case Opcode::SLt:
      return boolToBv1(A(0) < A(1));
    case Opcode::SLe:
      return boolToBv1(A(0) <= A(1));
    case Opcode::Ite:
      return z3::ite(A(0) == C.bv_val(1, 1), A(1), A(2));
    }
    return C.bv_const("unknown", W);
  }

  z3::expr rangeConstraint(const RangeClause &RC, const ExprContext &Ctx) {
    z3::expr E = translate(RC.E, Ctx);
    z3::expr B = C.bv_val(static_cast<uint64_t>(RC.Bound), RC.E->width());
    switch (RC.Op) {
    case RelOp::Eq:
      return E == B;
    case RelOp::Ne:
      return E != B;
    case RelOp::ULt:
      return z3::ult(E, B);
    case RelOp::ULe:
      return z3::ule(E, B);
    case RelOp::UGe:
      return z3::uge(E, B);
    case RelOp::UGt:
      return z3::ugt(E, B);
    case RelOp::SLt:
      return E < B;
    case RelOp::SLe:
      return E <= B;
    case RelOp::SGe:
      return E >= B;
    case RelOp::SGt:
      return E > B;
    }
    return C.bool_val(true);
  }
};

Z3Backend::Z3Backend() : I(new Impl()) {}
Z3Backend::~Z3Backend() { delete I; }

void Z3Backend::boundTransCache() {
  if (I->Cache.size() <= Impl::MaxCacheEntries)
    return;
  I->Cache.clear();
  ++Evictions;
}

MemRel Z3Backend::query(const Region &R0, const Region &R1,
                        const pred::Pred &P, const ExprContext &Ctx,
                        bool Persistent) {
  ++Queries;
  boundTransCache();
  try {
    // Pick the solver. Persistent mode keeps one solver alive and only
    // re-asserts the predicate's range clauses when the version stamp
    // changes (equal stamps imply identical clause content, so reuse is
    // exact); the throwaway path builds a fresh solver per query, the
    // historical cost model.
    std::optional<z3::solver> Fresh;
    z3::solver *SP = nullptr;
    if (Persistent) {
      if (!I->Persist) {
        I->Persist.emplace(I->C);
        I->PersistValid = false;
      }
      SP = &*I->Persist;
      if (!I->PersistValid || I->PersistVer != P.version()) {
        I->PersistValid = false;
        SP->reset();
        SP->set("timeout", 200u); // per-check millisecond budget
        for (const RangeClause &RC : P.ranges())
          SP->add(I->rangeConstraint(RC, Ctx));
        I->PersistVer = P.version();
        I->PersistValid = true;
        ++CtxResets;
      } else {
        ++CtxReuses;
      }
    } else {
      Fresh.emplace(I->C);
      SP = &*Fresh;
      SP->set("timeout", 200u); // per-check millisecond budget
      for (const RangeClause &RC : P.ranges())
        SP->add(I->rangeConstraint(RC, Ctx));
    }
    z3::solver &S = *SP;

    z3::expr A0 = I->translate(R0.Addr, Ctx);
    z3::expr A1 = I->translate(R1.Addr, Ctx);
    z3::expr S0 = I->C.bv_val(static_cast<uint64_t>(R0.Size), 64);
    z3::expr S1 = I->C.bv_val(static_cast<uint64_t>(R1.Size), 64);

    // Each probe runs in its own push/pop frame so the base assertions
    // survive for the next probe — and, in persistent mode, for the next
    // query under the same predicate version.
    auto ProbeUnsat = [&](const z3::expr &Probe) {
      S.push();
      S.add(Probe);
      bool Unsat = S.check() == z3::unsat;
      S.pop();
      return Unsat;
    };

    // Exact modular overlap condition:
    //   overlap <=> (a0 - a1 <u s1) \/ (a1 - a0 <u s0)
    if (ProbeUnsat(z3::ult(A0 - A1, S1) || z3::ult(A1 - A0, S0)))
      return MemRel::MustSep;
    if (R0.Size == R1.Size && ProbeUnsat(A0 != A1))
      return MemRel::MustAlias;
    // Enclosure (modular form): a0 - a1 <=u s1 - s0.
    if (R0.Size < R1.Size && ProbeUnsat(!z3::ule(A0 - A1, S1 - S0)))
      return MemRel::MustEnc01;
    if (R1.Size < R0.Size && ProbeUnsat(!z3::ule(A1 - A0, S0 - S1)))
      return MemRel::MustEnc10;
    return MemRel::Unknown;
  } catch (const z3::exception &) {
    // A mid-probe failure may leave an unbalanced frame on the persistent
    // solver; force a reset on its next use.
    I->PersistValid = false;
    return MemRel::Unknown;
  }
}

bool Z3Backend::mustEqual(const Expr *E0, const Expr *E1, const pred::Pred &P,
                          const ExprContext &Ctx) {
  ++Queries;
  boundTransCache();
  try {
    z3::solver S(I->C);
    S.set("timeout", 200u);
    for (const RangeClause &RC : P.ranges())
      S.add(I->rangeConstraint(RC, Ctx));
    S.add(I->translate(E0, Ctx) != I->translate(E1, Ctx));
    return S.check() == z3::unsat;
  } catch (const z3::exception &) {
    return false;
  }
}

} // namespace hglift::smt

#endif // HGLIFT_WITH_Z3
