// memRelName lives in RelationSolver.cpp; this file exists so the library
// has a translation unit even when Z3 is disabled.
#include "smt/Region.h"
