#include "smt/RelationSolver.h"

#include "diag/Trace.h"
#include "smt/Z3Backend.h"

#include <algorithm>

namespace hglift::smt {

using expr::Expr;
using expr::ExprContext;
using expr::LinearForm;
using expr::VarClass;

namespace {
inline size_t mixHash(size_t H, uint64_t V) {
  V *= 0x9e3779b97f4a7c15ULL;
  V ^= V >> 29;
  return (H ^ V) * 0xbf58476d1ce4e5b9ULL + 1;
}
} // namespace

size_t RelationSolver::RelKeyHash::operator()(const RelKey &K) const {
  size_t H = mixHash(0x5e1a7e, K.A0->hashValue());
  H = mixHash(H, K.A1->hashValue());
  H = mixHash(H, (uint64_t(K.S0) << 32) | K.S1);
  return mixHash(H, K.Ver);
}

size_t RelationSolver::EqKeyHash::operator()(const EqKey &K) const {
  size_t H = mixHash(0xe9a1, K.E0->hashValue());
  H = mixHash(H, K.E1->hashValue());
  return mixHash(H, K.Ver);
}

const char *memRelName(MemRel R) {
  switch (R) {
  case MemRel::MustAlias:
    return "alias";
  case MemRel::MustSep:
    return "separate";
  case MemRel::MustEnc01:
    return "enclosed";
  case MemRel::MustEnc10:
    return "encloses";
  case MemRel::MustPartial:
    return "partial-overlap";
  case MemRel::Unknown:
    return "unknown";
  }
  return "?";
}

AllocClass classifyAddr(const Expr *Addr, const ExprContext &Ctx) {
  LinearForm LF = expr::linearize(Addr);
  if (LF.Terms.empty())
    return AllocClass::Global;
  // Base variables (coefficient 1) determine the allocation; any remaining
  // terms are treated as array indices *within* that allocation — this is
  // the paper's implicit "global/stack/heap spaces do not overlap"
  // assumption applied to indexed accesses as well.
  bool HasStack = false, HasHeap = false, HasArg = false, HasIndex = false;
  for (auto &[Coeff, Atom] : LF.Terms) {
    if (Atom->isVar() && Coeff == 1) {
      VarClass C = Ctx.varInfo(Atom->varId()).Cls;
      if (C == VarClass::StackBase) {
        HasStack = true;
        continue;
      }
      if (C == VarClass::External) {
        HasHeap = true;
        continue;
      }
      if (C == VarClass::InitReg) {
        HasArg = true;
        continue;
      }
    }
    HasIndex = true;
  }
  unsigned Bases = unsigned(HasStack) + unsigned(HasHeap) + unsigned(HasArg);
  if (Bases > 1)
    return AllocClass::Other;
  if (HasStack)
    return AllocClass::StackFrame;
  if (HasHeap)
    return AllocClass::Heap;
  if (HasArg)
    return AllocClass::ArgPtr;
  static_cast<void>(HasIndex);
  return AllocClass::Global;
}

RelationSolver::RelationSolver(ExprContext &Ctx, Config Cfg)
    : Ctx(Ctx), Cfg(Cfg) {
#ifdef HGLIFT_WITH_Z3
  if (Cfg.UseZ3)
    Z3 = std::make_unique<Z3Backend>();
#endif
}

RelationSolver::~RelationSolver() = default;

MemRel RelationSolver::relateByConstantDelta(int64_t Delta, uint32_t S0,
                                             uint32_t S1) {
  // Delta = addr0 - addr1. The no-wraparound assumption for same-base
  // offsets is implicit in compiler-generated address arithmetic; partial
  // overlap is decided exactly here.
  if (Delta == 0 && S0 == S1)
    return MemRel::MustAlias;
  if (Delta >= static_cast<int64_t>(S1) ||
      -Delta >= static_cast<int64_t>(S0))
    return MemRel::MustSep;
  if (Delta >= 0 && Delta + static_cast<int64_t>(S0) <= static_cast<int64_t>(S1))
    return MemRel::MustEnc01;
  if (Delta <= 0 &&
      -Delta + static_cast<int64_t>(S1) <= static_cast<int64_t>(S0))
    return MemRel::MustEnc10;
  return MemRel::MustPartial;
}

void RelationSolver::boundCaches(uint64_t LiveVer) {
  if (RelCache.size() + EqCache.size() < Cfg.CacheCap)
    return;
  size_t Before = RelCache.size() + EqCache.size();
  for (auto It = RelCache.begin(); It != RelCache.end();)
    It = It->first.Ver == LiveVer ? std::next(It) : RelCache.erase(It);
  for (auto It = EqCache.begin(); It != EqCache.end();)
    It = It->first.Ver == LiveVer ? std::next(It) : EqCache.erase(It);
  if (RelCache.size() + EqCache.size() == Before) {
    // Everything belongs to the live version: clearing is the only way to
    // respect the cap.
    RelCache.clear();
    EqCache.clear();
  }
  uint64_t Dropped = Before - (RelCache.size() + EqCache.size());
  S.CacheInvalidated += Dropped;
  if (LS)
    LS->RelCacheInvalidated += Dropped;
}

MemRel RelationSolver::relate(const Region &R0, const Region &R1,
                              const pred::Pred &P) {
  ++S.Queries;
  if (LS)
    ++LS->SolverQueries;
  if (!Cfg.EnableCache)
    return relateRecorded(R0, R1, P);

  RelKey Key{R0.Addr, R1.Addr, R0.Size, R1.Size, P.version()};
  if (auto It = RelCache.find(Key); It != RelCache.end()) {
    ++S.CacheHits;
    if (LS)
      ++LS->RelCacheHits;
    return It->second;
  }
  ++S.CacheMisses;
  if (LS)
    ++LS->RelCacheMisses;
  MemRel R = relateRecorded(R0, R1, P);
  boundCaches(Key.Ver);
  RelCache.emplace(Key, R);
  return R;
}

namespace {
/// Indexed by QueryRec::Layer.
const char *const LayerNames[] = {"syntactic", "interval", "alloc-class",
                                  "z3", "undecided"};
} // namespace

MemRel RelationSolver::relateRecorded(const Region &R0, const Region &R1,
                                      const pred::Pred &P) {
  Stats Before = S;
  MemRel R = relateUncached(R0, R1, P);
  uint8_t Layer = 4; // undecided
  if (S.SyntacticHits != Before.SyntacticHits)
    Layer = 0;
  else if (S.IntervalHits != Before.IntervalHits)
    Layer = 1;
  else if (S.ClassAssumptionHits != Before.ClassAssumptionHits)
    Layer = 2;
  else if (S.Z3Hits != Before.Z3Hits)
    Layer = 3;
  Recent[RecentCount++ % QueryRingSize] =
      QueryRec{R0.Addr, R1.Addr, R0.Size, R1.Size, R, Layer};

  if (diag::Tracer *T = diag::Tracer::active()) {
    diag::TraceEvent E("solver_call");
    E.hex("fn", diag::TraceContext::currentFunction());
    E.field("r0", R0.str(Ctx));
    E.field("r1", R1.str(Ctx));
    E.field("rel", memRelName(R));
    E.field("layer", LayerNames[Layer]);
    T->emit(std::move(E));
  }
  return R;
}

std::vector<std::string> RelationSolver::recentQueries(size_t Max) const {
  std::vector<std::string> Out;
  uint64_t N = std::min<uint64_t>({RecentCount, QueryRingSize, Max});
  for (uint64_t I = 0; I < N; ++I) {
    const QueryRec &Q = Recent[(RecentCount - 1 - I) % QueryRingSize];
    Out.push_back(Region{Q.A0, Q.S0}.str(Ctx) + " vs " +
                  Region{Q.A1, Q.S1}.str(Ctx) + " -> " +
                  memRelName(Q.Res) + " (" + LayerNames[Q.Layer] + ")");
  }
  return Out;
}

MemRel RelationSolver::relateUncached(const Region &R0, const Region &R1,
                                      const pred::Pred &P) {
  if (R0.Addr == R1.Addr && R0.Size == R1.Size) {
    ++S.SyntacticHits;
    return MemRel::MustAlias;
  }

  // Linear difference.
  LinearForm L0 = expr::linearize(R0.Addr);
  LinearForm L1 = expr::linearize(R1.Addr);
  if (L0.sameBase(L1)) {
    ++S.SyntacticHits;
    return relateByConstantDelta(L0.Constant - L1.Constant, R0.Size, R1.Size);
  }

  // Interval reasoning on the difference: Delta = addr0 - addr1.
  {
    const Expr *Diff = Ctx.mkSub(R0.Addr, R1.Addr);
    Interval ID = P.intervalOf(Diff);
    if (!ID.isTop() && !ID.isEmpty()) {
      if (ID.atLeast(static_cast<int64_t>(R1.Size)) ||
          ID.below(-static_cast<int64_t>(R0.Size) + 1)) {
        ++S.IntervalHits;
        return MemRel::MustSep;
      }
      if (ID.isPoint()) {
        ++S.IntervalHits;
        return relateByConstantDelta(ID.lo(), R0.Size, R1.Size);
      }
      if (Interval(0, static_cast<int64_t>(R1.Size) -
                          static_cast<int64_t>(R0.Size))
              .contains(ID)) {
        ++S.IntervalHits;
        return MemRel::MustEnc01;
      }
      if (Interval(-(static_cast<int64_t>(R0.Size) -
                     static_cast<int64_t>(R1.Size)),
                   0)
              .contains(ID)) {
        ++S.IntervalHits;
        return MemRel::MustEnc10;
      }
    }
  }

  // Allocation-class separation assumptions (recorded as obligations).
  // Only the pairs the paper relies on: the local stack frame is assumed
  // separate from globals, the heap, and pointer arguments ("the local
  // stack frame was modelled accurately", §5.1), and globals from fresh
  // heap allocations. A pointer argument may well alias a global, so that
  // pair stays Unknown.
  if (Cfg.AllocClassAssumptions) {
    AllocClass C0 = classifyAddr(R0.Addr, Ctx);
    AllocClass C1 = classifyAddr(R1.Addr, Ctx);
    auto Pair = [&](AllocClass X, AllocClass Y) {
      return (C0 == X && C1 == Y) || (C0 == Y && C1 == X);
    };
    bool Distinct = Pair(AllocClass::StackFrame, AllocClass::Global) ||
                    Pair(AllocClass::StackFrame, AllocClass::Heap) ||
                    Pair(AllocClass::StackFrame, AllocClass::ArgPtr) ||
                    Pair(AllocClass::Global, AllocClass::Heap);
    if (Distinct) {
      ++S.ClassAssumptionHits;
      Assumptions.push_back(Assumption{
          "ASSUME " + R0.str(Ctx) + " SEPARATE FROM " + R1.str(Ctx) +
          " (distinct allocation classes)"});
      return MemRel::MustSep;
    }
  }

#ifdef HGLIFT_WITH_Z3
  // Without range clauses Z3 has no information beyond the syntactic core
  // and every query would come back Unknown; skip the round trip.
  if (Z3 && !P.ranges().empty()) {
    ++S.Z3Queries;
    if (LS)
      ++LS->Z3Queries;
    MemRel R = Z3->query(R0, R1, P, Ctx);
    S.Z3TransEvictions = Z3->numEvictions();
    if (R != MemRel::Unknown) {
      ++S.Z3Hits;
      return R;
    }
  }
#endif

  return MemRel::Unknown;
}

bool RelationSolver::mustEqual(const Expr *E0, const Expr *E1,
                               const pred::Pred &P) {
  if (E0 == E1)
    return true;
  LinearForm L0 = expr::linearize(E0);
  LinearForm L1 = expr::linearize(E1);
  if (L0.sameBase(L1))
    return L0.Constant == L1.Constant;
#ifdef HGLIFT_WITH_Z3
  if (Z3) {
    if (!Cfg.EnableCache)
      return Z3->mustEqual(E0, E1, P, Ctx);
    EqKey Key{E0, E1, P.version()};
    if (auto It = EqCache.find(Key); It != EqCache.end()) {
      ++S.CacheHits;
      if (LS)
        ++LS->RelCacheHits;
      return It->second;
    }
    ++S.CacheMisses;
    if (LS)
      ++LS->RelCacheMisses;
    bool Eq = Z3->mustEqual(E0, E1, P, Ctx);
    S.Z3TransEvictions = Z3->numEvictions();
    boundCaches(Key.Ver);
    EqCache.emplace(Key, Eq);
    return Eq;
  }
#endif
  return false;
}

} // namespace hglift::smt
