#include "smt/RelationSolver.h"

#include "diag/Trace.h"
#include "smt/Z3Backend.h"

#include <algorithm>
#include <chrono>

namespace hglift::smt {

using expr::Expr;
using expr::ExprContext;
using expr::ExprKind;
using expr::LinearForm;
using expr::VarClass;

namespace {
inline size_t mixHash(size_t H, uint64_t V) {
  V *= 0x9e3779b97f4a7c15ULL;
  V ^= V >> 29;
  return (H ^ V) * 0xbf58476d1ce4e5b9ULL + 1;
}

/// A - B over canonical linear forms (both sorted by atom pointer with
/// merged coefficients, as linearize produces them). Merging directly is
/// what lets the portfolio skip interning a Sub expression and
/// re-linearizing it for every query.
LinearForm subForms(const LinearForm &A, const LinearForm &B) {
  LinearForm R;
  R.Constant = static_cast<int64_t>(static_cast<uint64_t>(A.Constant) -
                                    static_cast<uint64_t>(B.Constant));
  R.Terms.reserve(A.Terms.size() + B.Terms.size());
  size_t I = 0, J = 0;
  while (I < A.Terms.size() || J < B.Terms.size()) {
    bool TakeA = J == B.Terms.size() ||
                 (I < A.Terms.size() &&
                  A.Terms[I].second < B.Terms[J].second);
    bool TakeB = I == A.Terms.size() ||
                 (J < B.Terms.size() &&
                  B.Terms[J].second < A.Terms[I].second);
    if (TakeA) {
      R.Terms.push_back(A.Terms[I++]);
    } else if (TakeB) {
      R.Terms.push_back({static_cast<int64_t>(
                             -static_cast<uint64_t>(B.Terms[J].first)),
                         B.Terms[J].second});
      ++J;
    } else {
      int64_t C = static_cast<int64_t>(
          static_cast<uint64_t>(A.Terms[I].first) -
          static_cast<uint64_t>(B.Terms[J].first));
      if (C != 0)
        R.Terms.push_back({C, A.Terms[I].second});
      ++I;
      ++J;
    }
  }
  return R;
}
} // namespace

size_t RelationSolver::RelKeyHash::operator()(const RelKey &K) const {
  size_t H = mixHash(0x5e1a7e, K.A0->hashValue());
  H = mixHash(H, K.A1->hashValue());
  H = mixHash(H, (uint64_t(K.S0) << 32) | K.S1);
  return mixHash(H, K.Ver);
}

size_t RelationSolver::EqKeyHash::operator()(const EqKey &K) const {
  size_t H = mixHash(0xe9a1, K.E0->hashValue());
  H = mixHash(H, K.E1->hashValue());
  return mixHash(H, K.Ver);
}

const char *memRelName(MemRel R) {
  switch (R) {
  case MemRel::MustAlias:
    return "alias";
  case MemRel::MustSep:
    return "separate";
  case MemRel::MustEnc01:
    return "enclosed";
  case MemRel::MustEnc10:
    return "encloses";
  case MemRel::MustPartial:
    return "partial-overlap";
  case MemRel::Unknown:
    return "unknown";
  }
  return "?";
}

const char *tierName(Tier T) {
  switch (T) {
  case Tier::Syntactic:
    return "syntactic";
  case Tier::Interval:
    return "interval";
  case Tier::AllocClass:
    return "alloc-class";
  case Tier::Z3:
    return "z3";
  case Tier::None:
    return "undecided";
  }
  return "?";
}

AllocClass classifyForm(const LinearForm &LF, const ExprContext &Ctx) {
  if (LF.Terms.empty())
    return AllocClass::Global;
  // Base variables (coefficient 1) determine the allocation; any remaining
  // terms are treated as array indices *within* that allocation — this is
  // the paper's implicit "global/stack/heap spaces do not overlap"
  // assumption applied to indexed accesses as well.
  bool HasStack = false, HasHeap = false, HasArg = false, HasIndex = false;
  for (auto &[Coeff, Atom] : LF.Terms) {
    if (Atom->isVar() && Coeff == 1) {
      VarClass C = Ctx.varInfo(Atom->varId()).Cls;
      if (C == VarClass::StackBase) {
        HasStack = true;
        continue;
      }
      if (C == VarClass::External) {
        HasHeap = true;
        continue;
      }
      if (C == VarClass::InitReg) {
        HasArg = true;
        continue;
      }
    }
    HasIndex = true;
  }
  unsigned Bases = unsigned(HasStack) + unsigned(HasHeap) + unsigned(HasArg);
  if (Bases > 1)
    return AllocClass::Other;
  if (HasStack)
    return AllocClass::StackFrame;
  if (HasHeap)
    return AllocClass::Heap;
  if (HasArg)
    return AllocClass::ArgPtr;
  static_cast<void>(HasIndex);
  return AllocClass::Global;
}

AllocClass classifyAddr(const Expr *Addr, const ExprContext &Ctx) {
  return classifyForm(expr::linearize(Addr), Ctx);
}

RelationSolver::RelationSolver(ExprContext &Ctx, Config Cfg)
    : Ctx(Ctx), Cfg(Cfg) {
#ifdef HGLIFT_WITH_Z3
  if (Cfg.UseZ3)
    Z3 = std::make_unique<Z3Backend>();
#endif
}

RelationSolver::~RelationSolver() = default;

namespace {
/// Delta = addr0 - addr1, constant. The no-wraparound assumption for
/// same-base offsets is implicit in compiler-generated address
/// arithmetic; partial overlap is decided exactly here.
MemRel relByDelta(int64_t Delta, uint32_t S0, uint32_t S1) {
  if (Delta == 0 && S0 == S1)
    return MemRel::MustAlias;
  if (Delta >= static_cast<int64_t>(S1) ||
      -Delta >= static_cast<int64_t>(S0))
    return MemRel::MustSep;
  if (Delta >= 0 && Delta + static_cast<int64_t>(S0) <= static_cast<int64_t>(S1))
    return MemRel::MustEnc01;
  if (Delta <= 0 &&
      -Delta + static_cast<int64_t>(S1) <= static_cast<int64_t>(S0))
    return MemRel::MustEnc10;
  return MemRel::MustPartial;
}

/// Map the interval of (addr0 - addr1) onto a relation, or Unknown if the
/// interval does not pin one down. Shared by the portfolio tier 1, the
/// legacy path, and the forced-tier replay so they cannot drift apart.
MemRel relFromDiffInterval(const Interval &ID, uint32_t S0, uint32_t S1) {
  if (ID.isTop() || ID.isEmpty())
    return MemRel::Unknown;
  if (ID.atLeast(static_cast<int64_t>(S1)) ||
      ID.below(-static_cast<int64_t>(S0) + 1))
    return MemRel::MustSep;
  if (ID.isPoint())
    return relByDelta(ID.lo(), S0, S1);
  if (Interval(0, static_cast<int64_t>(S1) - static_cast<int64_t>(S0))
          .contains(ID))
    return MemRel::MustEnc01;
  if (Interval(-(static_cast<int64_t>(S0) - static_cast<int64_t>(S1)), 0)
          .contains(ID))
    return MemRel::MustEnc10;
  return MemRel::Unknown;
}

/// The allocation-class pairs the paper relies on: the local stack frame
/// is assumed separate from globals, the heap, and pointer arguments ("the
/// local stack frame was modelled accurately", §5.1), and globals from
/// fresh heap allocations. A pointer argument may well alias a global, so
/// that pair stays Unknown.
bool distinctClasses(AllocClass C0, AllocClass C1) {
  auto Pair = [&](AllocClass X, AllocClass Y) {
    return (C0 == X && C1 == Y) || (C0 == Y && C1 == X);
  };
  return Pair(AllocClass::StackFrame, AllocClass::Global) ||
         Pair(AllocClass::StackFrame, AllocClass::Heap) ||
         Pair(AllocClass::StackFrame, AllocClass::ArgPtr) ||
         Pair(AllocClass::Global, AllocClass::Heap);
}
} // namespace

void RelationSolver::boundCaches(uint64_t LiveVer) {
  if (RelCache.size() + EqCache.size() < Cfg.CacheCap)
    return;
  size_t Before = RelCache.size() + EqCache.size();
  for (auto It = RelCache.begin(); It != RelCache.end();)
    It = It->first.Ver == LiveVer ? std::next(It) : RelCache.erase(It);
  for (auto It = EqCache.begin(); It != EqCache.end();)
    It = It->first.Ver == LiveVer ? std::next(It) : EqCache.erase(It);
  uint64_t Stale = Before - (RelCache.size() + EqCache.size());
  S.CacheInvalidated += Stale;
  if (LS)
    LS->RelCacheInvalidated += Stale;
  if (Stale == 0) {
    // Everything belongs to the live version: clearing is the only way to
    // respect the cap. These entries were still hittable, so they count
    // as evictions, not invalidations.
    uint64_t Evicted = Before;
    RelCache.clear();
    EqCache.clear();
    S.CacheEvicted += Evicted;
    if (LS)
      LS->RelCacheEvicted += Evicted;
  }
}

RelationSolver::Decision RelationSolver::decide(const Region &R0,
                                                const Region &R1,
                                                const pred::Pred &P) {
  ++S.Queries;
  if (LS)
    ++LS->SolverQueries;
  if (!Cfg.EnableCache)
    return decideRecorded(R0, R1, P);

  RelKey Key{R0.Addr, R1.Addr, R0.Size, R1.Size, P.version()};
  if (auto It = RelCache.find(Key); It != RelCache.end()) {
    ++S.CacheHits;
    if (LS)
      ++LS->RelCacheHits;
    return Decision{It->second.Rel, It->second.DecidedBy, /*CacheHit=*/true};
  }
  ++S.CacheMisses;
  if (LS)
    ++LS->RelCacheMisses;
  Decision D = decideRecorded(R0, R1, P);
  boundCaches(Key.Ver);
  RelCache.emplace(Key, CachedRel{D.Rel, D.DecidedBy});
  return D;
}

RelationSolver::Decision
RelationSolver::decideRecorded(const Region &R0, const Region &R1,
                               const pred::Pred &P) {
  auto Start = std::chrono::steady_clock::now();
  Decision D = decideUncached(R0, R1, P);
  double Sec = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
  S.DecideSeconds += Sec;
  if (LS)
    LS->SolverSeconds += Sec;

  switch (D.DecidedBy) {
  case Tier::Syntactic:
    ++S.SyntacticHits;
    if (LS)
      ++LS->SolverTier0Hits;
    break;
  case Tier::Interval:
    ++S.IntervalHits;
    if (LS)
      ++LS->SolverTier1Hits;
    break;
  case Tier::AllocClass:
    ++S.ClassAssumptionHits;
    if (LS)
      ++LS->SolverClassHits;
    break;
  case Tier::Z3:
    ++S.Z3Hits;
    if (LS)
      ++LS->SolverTier2Hits;
    break;
  case Tier::None:
    ++S.Fallthroughs;
    if (LS)
      ++LS->SolverFallthroughs;
    break;
  }

  Recent[RecentCount++ % QueryRingSize] =
      QueryRec{R0.Addr,       R1.Addr, R0.Size, R1.Size, D.Rel,
               uint8_t(D.DecidedBy)};

  if (Cfg.LogQueries && Log.size() < Cfg.LogCap)
    Log.push_back(LoggedQuery{R0.Addr, R1.Addr, R0.Size, R1.Size, P, D.Rel,
                              D.DecidedBy});

  if (diag::Tracer *T = diag::Tracer::active()) {
    diag::TraceEvent E("solver_call");
    E.hex("fn", diag::TraceContext::currentFunction());
    E.field("r0", R0.str(Ctx));
    E.field("r1", R1.str(Ctx));
    E.field("rel", memRelName(D.Rel));
    E.field("layer", tierName(D.DecidedBy));
    T->emit(std::move(E));
  }
  return D;
}

std::vector<std::string> RelationSolver::recentQueries(size_t Max) const {
  std::vector<std::string> Out;
  uint64_t N = std::min<uint64_t>({RecentCount, QueryRingSize, Max});
  for (uint64_t I = 0; I < N; ++I) {
    const QueryRec &Q = Recent[(RecentCount - 1 - I) % QueryRingSize];
    Out.push_back(Region{Q.A0, Q.S0}.str(Ctx) + " vs " +
                  Region{Q.A1, Q.S1}.str(Ctx) + " -> " +
                  memRelName(Q.Res) + " (" + tierName(Tier(Q.Layer)) + ")");
  }
  return Out;
}

const LinearForm &RelationSolver::linearizeMemo(const Expr *E) {
  auto It = LinMemo.find(E);
  if (It != LinMemo.end())
    return It->second;
  return LinMemo.emplace(E, expr::linearize(E)).first->second;
}

const std::vector<const Expr *> &RelationSolver::leavesOf(const Expr *E) {
  auto It = LeafMemo.find(E);
  if (It != LeafMemo.end())
    return It->second;
  // Iterative DFS collecting Var and Deref nodes. A Deref is opaque: it
  // translates to one fresh Z3 constant keyed on the node itself, so its
  // address subexpression cannot constrain anything and is not descended
  // into.
  std::vector<const Expr *> Leaves;
  std::vector<const Expr *> Work{E};
  while (!Work.empty()) {
    const Expr *X = Work.back();
    Work.pop_back();
    switch (X->kind()) {
    case ExprKind::Var:
    case ExprKind::Deref:
      Leaves.push_back(X);
      break;
    case ExprKind::Const:
      break;
    case ExprKind::Op:
      for (const Expr *Op : X->operands())
        Work.push_back(Op);
      break;
    }
  }
  std::sort(Leaves.begin(), Leaves.end());
  Leaves.erase(std::unique(Leaves.begin(), Leaves.end()), Leaves.end());
  return LeafMemo.emplace(E, std::move(Leaves)).first->second;
}

const RelationSolver::RangeInfo &
RelationSolver::rangeInfoOf(const pred::Pred &P) {
  auto It = RangeInfoMemo.find(P.version());
  if (It != RangeInfoMemo.end())
    return It->second;
  RangeInfo RI;
  RI.HasEq = P.hasEqRange();
  for (const pred::RangeClause &C : P.ranges()) {
    const std::vector<const Expr *> &L = leavesOf(C.E);
    RI.Leaves.insert(RI.Leaves.end(), L.begin(), L.end());
  }
  std::sort(RI.Leaves.begin(), RI.Leaves.end());
  RI.Leaves.erase(std::unique(RI.Leaves.begin(), RI.Leaves.end()),
                  RI.Leaves.end());
  return RangeInfoMemo.emplace(P.version(), std::move(RI)).first->second;
}

namespace {
bool sortedContains(const std::vector<const Expr *> &V, const Expr *E) {
  return std::binary_search(V.begin(), V.end(), E);
}
bool sortedIntersect(const std::vector<const Expr *> &A,
                     const std::vector<const Expr *> &B) {
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] == B[J])
      return true;
    if (A[I] < B[J])
      ++I;
    else
      ++J;
  }
  return false;
}
} // namespace

bool RelationSolver::admitSkipsZ3(const Region &R0, const Region &R1,
                                  const LinearForm &L0, const LinearForm &L1,
                                  const pred::Pred &P) {
  // Without range clauses Z3 has no information beyond the syntactic core
  // (same skip the legacy path takes, here it is counted).
  if (P.ranges().empty())
    return true;

  const RangeInfo &RI = rangeInfoOf(P);
  const std::vector<const Expr *> &Lv0 = leavesOf(R0.Addr);
  const std::vector<const Expr *> &Lv1 = leavesOf(R1.Addr);

  // Rule 1 — irrelevance: no range clause mentions any leaf of either
  // address, and the addresses share no leaf. The assertions then say
  // nothing about either address and there is no common subterm for Z3 to
  // reason through; the only separations it could still find are pure
  // bit-structure arguments (parity tricks and the like) that compiler
  // address arithmetic does not produce — and that the legacy path already
  // forfeits whenever the clause list is empty.
  auto Touches = [&](const std::vector<const Expr *> &Lv) {
    for (const Expr *L : Lv)
      if (sortedContains(RI.Leaves, L))
        return true;
    return false;
  };
  bool Clause0 = Touches(Lv0), Clause1 = Touches(Lv1);
  if (!Clause0 && !Clause1 && !sortedIntersect(Lv0, Lv1))
    return true;

  // Rule 2 — free side: one address is v + k for a 64-bit variable v that
  // appears in no range clause and not in the other address. If the
  // predicate is satisfiable, v can be chosen to realize both overlap and
  // disjointness (it is unconstrained and occurs nowhere else), so no
  // necessarily-relation is derivable and the round trip is wasted. The
  // guard: predicates carrying an Eq clause are never filtered — those are
  // the pinned (often widened-loop) states that can be *unsatisfiable*,
  // where Z3 proves every relation vacuously, and we keep that precision.
  if (!RI.HasEq) {
    auto FreeSide = [&](const LinearForm &L,
                        const std::vector<const Expr *> &OtherLeaves) {
      if (L.Terms.size() != 1)
        return false;
      auto &[Coeff, Atom] = L.Terms[0];
      if (Coeff != 1 && Coeff != -1)
        return false;
      if (!Atom->isVar() || Atom->width() != 64)
        return false;
      return !sortedContains(RI.Leaves, Atom) &&
             !sortedContains(OtherLeaves, Atom);
    };
    if (FreeSide(L0, Lv1) || FreeSide(L1, Lv0))
      return true;
  }
  return false;
}

RelationSolver::Decision
RelationSolver::decideUncached(const Region &R0, const Region &R1,
                               const pred::Pred &P) {
  return Cfg.Portfolio ? decidePortfolio(R0, R1, P)
                       : decideLegacy(R0, R1, P);
}

RelationSolver::Decision
RelationSolver::decidePortfolio(const Region &R0, const Region &R1,
                                const pred::Pred &P) {
  // Bound the memos up front, never mid-query: every map is node-based,
  // so inserts keep references valid; only clearing would not.
  if (LinMemo.size() > MemoCap)
    LinMemo.clear();
  if (LeafMemo.size() > MemoCap)
    LeafMemo.clear();
  if (RangeInfoMemo.size() > MemoCap)
    RangeInfoMemo.clear();

  // Tier 0: syntactic discharge.
  if (R0.Addr == R1.Addr && R0.Size == R1.Size)
    return Decision{MemRel::MustAlias, Tier::Syntactic, false};

  const LinearForm &L0 = linearizeMemo(R0.Addr);
  const LinearForm &L1 = linearizeMemo(R1.Addr);
  if (L0.sameBase(L1))
    return Decision{relByDelta(static_cast<int64_t>(
                                   static_cast<uint64_t>(L0.Constant) -
                                   static_cast<uint64_t>(L1.Constant)),
                               R0.Size, R1.Size),
                    Tier::Syntactic, false};

  // Tier 1: interval reasoning on the linear difference, computed by
  // direct form subtraction (no Sub expression interned, no
  // re-linearization).
  LinearForm Diff = subForms(L0, L1);
  MemRel R =
      relFromDiffInterval(P.intervalOfForm(Diff), R0.Size, R1.Size);
  if (R != MemRel::Unknown)
    return Decision{R, Tier::Interval, false};

  // Allocation-class separation assumptions (recorded as obligations).
  if (Cfg.AllocClassAssumptions &&
      distinctClasses(classifyForm(L0, Ctx), classifyForm(L1, Ctx))) {
    Assumptions.push_back(Assumption{
        "ASSUME " + R0.str(Ctx) + " SEPARATE FROM " + R1.str(Ctx) +
        " (distinct allocation classes)"});
    return Decision{MemRel::MustSep, Tier::AllocClass, false};
  }

#ifdef HGLIFT_WITH_Z3
  if (Z3) {
    if (admitSkipsZ3(R0, R1, L0, L1, P)) {
      ++S.Tier2Skipped;
      if (LS)
        ++LS->SolverTier2Skipped;
    } else {
      ++S.Z3Queries;
      if (LS)
        ++LS->Z3Queries;
      MemRel ZR = Z3->query(R0, R1, P, Ctx, /*Persistent=*/true);
      S.Z3TransEvictions = Z3->numEvictions();
      S.Z3CtxReuses = Z3->numCtxReuses();
      if (ZR != MemRel::Unknown)
        return Decision{ZR, Tier::Z3, false};
    }
  }
#endif

  return Decision{MemRel::Unknown, Tier::None, false};
}

RelationSolver::Decision
RelationSolver::decideLegacy(const Region &R0, const Region &R1,
                             const pred::Pred &P) {
  if (R0.Addr == R1.Addr && R0.Size == R1.Size)
    return Decision{MemRel::MustAlias, Tier::Syntactic, false};

  // Linear difference, recomputed per query (the historical cost model
  // the portfolio is benchmarked against).
  LinearForm L0 = expr::linearize(R0.Addr);
  LinearForm L1 = expr::linearize(R1.Addr);
  if (L0.sameBase(L1))
    return Decision{relByDelta(static_cast<int64_t>(
                                   static_cast<uint64_t>(L0.Constant) -
                                   static_cast<uint64_t>(L1.Constant)),
                               R0.Size, R1.Size),
                    Tier::Syntactic, false};

  // Interval reasoning on the difference: Delta = addr0 - addr1.
  {
    const Expr *Sub = Ctx.mkSub(R0.Addr, R1.Addr);
    MemRel R = relFromDiffInterval(P.intervalOf(Sub), R0.Size, R1.Size);
    if (R != MemRel::Unknown)
      return Decision{R, Tier::Interval, false};
  }

  if (Cfg.AllocClassAssumptions &&
      distinctClasses(classifyAddr(R0.Addr, Ctx),
                      classifyAddr(R1.Addr, Ctx))) {
    Assumptions.push_back(Assumption{
        "ASSUME " + R0.str(Ctx) + " SEPARATE FROM " + R1.str(Ctx) +
        " (distinct allocation classes)"});
    return Decision{MemRel::MustSep, Tier::AllocClass, false};
  }

#ifdef HGLIFT_WITH_Z3
  // Without range clauses Z3 has no information beyond the syntactic core
  // and every query would come back Unknown; skip the round trip.
  if (Z3 && !P.ranges().empty()) {
    ++S.Z3Queries;
    if (LS)
      ++LS->Z3Queries;
    MemRel R = Z3->query(R0, R1, P, Ctx, /*Persistent=*/false);
    S.Z3TransEvictions = Z3->numEvictions();
    if (R != MemRel::Unknown)
      return Decision{R, Tier::Z3, false};
  }
#endif

  return Decision{MemRel::Unknown, Tier::None, false};
}

RelationSolver::Decision
RelationSolver::decideWithTierOnly(const Region &R0, const Region &R1,
                                   const pred::Pred &P, Tier Only) {
  switch (Only) {
  case Tier::Syntactic: {
    if (R0.Addr == R1.Addr && R0.Size == R1.Size)
      return Decision{MemRel::MustAlias, Tier::Syntactic, false};
    LinearForm L0 = expr::linearize(R0.Addr);
    LinearForm L1 = expr::linearize(R1.Addr);
    if (L0.sameBase(L1))
      return Decision{relByDelta(static_cast<int64_t>(
                                     static_cast<uint64_t>(L0.Constant) -
                                     static_cast<uint64_t>(L1.Constant)),
                                 R0.Size, R1.Size),
                      Tier::Syntactic, false};
    return Decision{MemRel::Unknown, Tier::None, false};
  }
  case Tier::Interval: {
    LinearForm Diff =
        subForms(expr::linearize(R0.Addr), expr::linearize(R1.Addr));
    MemRel R = relFromDiffInterval(P.intervalOfForm(Diff), R0.Size, R1.Size);
    return Decision{R, R != MemRel::Unknown ? Tier::Interval : Tier::None,
                    false};
  }
  case Tier::AllocClass: {
    if (distinctClasses(classifyAddr(R0.Addr, Ctx),
                        classifyAddr(R1.Addr, Ctx)))
      return Decision{MemRel::MustSep, Tier::AllocClass, false};
    return Decision{MemRel::Unknown, Tier::None, false};
  }
  case Tier::Z3: {
#ifdef HGLIFT_WITH_Z3
    if (Z3) {
      // The trusted oracle: a fresh solver, no admission filter, no
      // empty-ranges skip.
      MemRel R = Z3->query(R0, R1, P, Ctx, /*Persistent=*/false);
      return Decision{R, R != MemRel::Unknown ? Tier::Z3 : Tier::None,
                      false};
    }
#endif
    return Decision{MemRel::Unknown, Tier::None, false};
  }
  case Tier::None:
    break;
  }
  return Decision{MemRel::Unknown, Tier::None, false};
}

bool RelationSolver::mustEqual(const Expr *E0, const Expr *E1,
                               const pred::Pred &P) {
  if (E0 == E1)
    return true;
  LinearForm L0 = expr::linearize(E0);
  LinearForm L1 = expr::linearize(E1);
  if (L0.sameBase(L1))
    return L0.Constant == L1.Constant;
#ifdef HGLIFT_WITH_Z3
  if (Z3) {
    if (!Cfg.EnableCache)
      return Z3->mustEqual(E0, E1, P, Ctx);
    EqKey Key{E0, E1, P.version()};
    if (auto It = EqCache.find(Key); It != EqCache.end()) {
      ++S.CacheHits;
      if (LS)
        ++LS->RelCacheHits;
      return It->second;
    }
    ++S.CacheMisses;
    if (LS)
      ++LS->RelCacheMisses;
    bool Eq = Z3->mustEqual(E0, E1, P, Ctx);
    S.Z3TransEvictions = Z3->numEvictions();
    boundCaches(Key.Ver);
    EqCache.emplace(Key, Eq);
    return Eq;
  }
#endif
  return false;
}

} // namespace hglift::smt
