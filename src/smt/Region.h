//===- Region.h - Symbolic memory regions ----------------------*- C++ -*-===//

#ifndef HGLIFT_SMT_REGION_H
#define HGLIFT_SMT_REGION_H

#include "expr/ExprContext.h"

#include <string>

namespace hglift::smt {

/// A memory region [Addr, Size): a constant-expression address and a byte
/// count (the paper's E × N / C × N).
struct Region {
  const expr::Expr *Addr = nullptr;
  uint32_t Size = 0;

  bool operator==(const Region &O) const = default;

  std::string str(const expr::ExprContext &Ctx) const {
    return "[" + Addr->str(Ctx) + "," + std::to_string(Size) + "]";
  }
};

/// Pairwise relations between regions (Definition 3.6). The Must* values
/// are *necessarily*-relations: they hold in every concrete state
/// satisfying the predicate.
enum class MemRel : uint8_t {
  MustAlias,   ///< ≡ : same address, same size
  MustSep,     ///< ⊲⊳ : disjoint
  MustEnc01,   ///< r0 ⪯ r1 : r0 enclosed in r1
  MustEnc10,   ///< r1 ⪯ r0
  MustPartial, ///< definitely partially overlapping (forces destroy)
  Unknown,
};

const char *memRelName(MemRel R);

} // namespace hglift::smt

#endif // HGLIFT_SMT_REGION_H
