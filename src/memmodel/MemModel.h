//===- MemModel.h - Memory models (§3.2) -----------------------*- C++ -*-===//
//
// A memory model is a forest of memory trees:
//
//   MemTree := {C × N} × Mem        Mem := {MemTree}
//
// Two regions in the same node alias; children are enclosed in their
// parents; siblings are separate (Definition 3.9). Insertion (Definition
// 3.7) is *nondeterministic*: when the relation between the inserted
// region and an existing tree cannot be established, the model branches
// over the possible relations — or, when partial overlap is possible,
// destroys the affected trees (§1: "we do not generate a new memory model,
// but instead simply destroy all regions in memory that may partially
// overlap").
//
// Beyond the paper's forest we carry a *clobber set*: every region that
// may have been written since function entry. The forest alone cannot
// answer "has [a,s] been written?" after joins drop trees (Definition 3.12
// intersects region sets), and that answer is what licenses reading the
// *initial* memory content for a region — so it is tracked monotonically
// here and only ever grows (or collapses to HavocAll).
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_MEMMODEL_MEMMODEL_H
#define HGLIFT_MEMMODEL_MEMMODEL_H

#include "smt/RelationSolver.h"

#include <string>
#include <vector>

namespace hglift::mem {

using smt::MemRel;
using smt::Region;

struct MemTree {
  std::vector<Region> Node;      ///< mutually aliasing regions
  std::vector<MemTree> Children; ///< enclosed sub-forest

  bool operator==(const MemTree &O) const = default;

  /// All regions in this tree (node + descendants).
  void collectRegions(std::vector<Region> &Out) const;
};

/// Policy for unknown pairwise relations during insertion — the paper's
/// behaviour is BranchAliasOrSep; DestroyAlways is the ablation that shows
/// why the nondeterministic branching matters (it loses the §2 weird edge).
enum class UnknownPolicy : uint8_t {
  BranchAliasOrSep,
  DestroyAlways,
};

/// One asserted relation, for the Step-2 checker and the tests.
struct RegionRel {
  Region R0, R1;
  MemRel Rel;
};

class MemModel {
public:
  std::vector<MemTree> Forest;

  /// Regions possibly written since function entry (monotone; unioned on
  /// join). When the set overflows, HavocAll is set instead.
  std::vector<Region> Clobbered;
  bool HavocAll = false;
  /// Set by external function calls: all non-stack-frame memory may have
  /// been written (§1's System V assumption keeps the local frame intact).
  bool HavocGlobals = false;

  bool operator==(const MemModel &O) const = default;

  // --- insertion (Definition 3.7) -----------------------------------------

  /// Insert region R, producing every possible resulting model. Ctx is
  /// used only to render assumption text.
  std::vector<struct InsertResult> insert(const Region &R,
                                          const pred::Pred &P,
                                          smt::RelationSolver &Solver,
                                          UnknownPolicy Policy,
                                          const expr::ExprContext &Ctx) const;

  // --- write tracking ------------------------------------------------------

  void noteWrite(const Region &R);
  /// Is R provably untouched since function entry (licenses reading the
  /// initial memory content)?
  bool provablyUntouched(const Region &R, const pred::Pred &P,
                         smt::RelationSolver &Solver,
                         const expr::ExprContext &Ctx) const;

  // --- join (Definition 3.12) ----------------------------------------------

  static MemModel join(const MemModel &A, const MemModel &B);

  /// Abstraction order for Algorithm 1 / the Step-2 checker: B is at least
  /// as abstract as A iff every relation asserted by B's forest is asserted
  /// by A's (and B's clobber knowledge covers A's).
  static bool leq(const MemModel &A, const MemModel &B);

  /// Cold-path mirror of leq(): repeats the same checks and renders the
  /// first requirement A fails to meet (a B relation A does not assert, or
  /// clobber knowledge B lacks). Returns the empty string when leq holds.
  static std::string leqExplain(const expr::ExprContext &Ctx,
                                const MemModel &A, const MemModel &B);

  // --- inspection -----------------------------------------------------------

  /// All pairwise relations asserted by the forest (Definition 3.9 view).
  std::vector<RegionRel> relations() const;
  std::vector<Region> allRegions() const;

  /// Locate R's node in the forest. On success fills the regions aliasing
  /// R (same node, R excluded), the regions of enclosing nodes (ancestors)
  /// and of enclosed nodes (descendants). Returns false if R is not in the
  /// forest.
  bool locate(const Region &R, std::vector<Region> &Aliases,
              std::vector<Region> &Ancestors,
              std::vector<Region> &Descendants) const;

  /// Semantic satisfaction s ⊢ M (Definition 3.9), for the property tests:
  /// evaluates region addresses concretely and checks alias / separation /
  /// enclosure numerically.
  bool holds(const expr::VarValuation &Vars, const expr::MemOracle &Mem) const;

  /// Structural content digest over the forest shape (region address
  /// hashes + sizes + nesting), the clobber set, and the havoc flags.
  /// Consistent with operator== : equal models have equal digests. Used by
  /// the lifter's leq memo (hg/StateMemo.h); collisions are resolved there
  /// by a full equality check, never trusted blindly.
  uint64_t digest() const;

  std::string str(const expr::ExprContext &Ctx) const;

private:
  static constexpr size_t MaxClobbered = 256;
  static constexpr size_t MaxModelsPerInsert = 8;
};

/// Result of one nondeterministic insertion outcome.
struct InsertResult {
  MemModel Model;
  /// Regions whose trees were destroyed; the caller must drop their
  /// memory clauses from the predicate.
  std::vector<Region> Destroyed;
  /// Human-readable assumptions made (no-partial-overlap branches).
  std::vector<std::string> Assumptions;
};

} // namespace hglift::mem

#endif // HGLIFT_MEMMODEL_MEMMODEL_H
