#include "memmodel/MemModel.h"

#include <algorithm>

namespace hglift::mem {

using expr::Expr;
using expr::ExprContext;
using pred::Pred;
using smt::AllocClass;
using smt::RelationSolver;

void MemTree::collectRegions(std::vector<Region> &Out) const {
  Out.insert(Out.end(), Node.begin(), Node.end());
  for (const MemTree &C : Children)
    C.collectRegions(Out);
}

namespace {

struct InsCtx {
  const Pred &P;
  RelationSolver &Solver;
  UnknownPolicy Policy;
  const ExprContext *Ctx = nullptr; // only for assumption text
};

/// Tree-level relation (§3.2 extension of Definition 3.6 to trees).
MemRel relateTrees(const MemTree &T0, const MemTree &T1, InsCtx &I) {
  // Alias: some top regions of the two trees necessarily alias.
  for (const Region &R0 : T0.Node)
    for (const Region &R1 : T1.Node)
      if (I.Solver.relate(R0, R1, I.P) == MemRel::MustAlias)
        return MemRel::MustAlias;

  // Separation: all regions pairwise necessarily separate.
  std::vector<Region> All0, All1;
  T0.collectRegions(All0);
  T1.collectRegions(All1);
  bool AllSep = true;
  bool AnyPartial = false;
  for (const Region &R0 : All0)
    for (const Region &R1 : All1) {
      MemRel R = I.Solver.relate(R0, R1, I.P);
      if (R != MemRel::MustSep)
        AllSep = false;
      if (R == MemRel::MustPartial)
        AnyPartial = true;
    }
  if (AllSep)
    return MemRel::MustSep;

  // Enclosure on top nodes.
  for (const Region &R0 : T0.Node)
    for (const Region &R1 : T1.Node) {
      MemRel R = I.Solver.relate(R0, R1, I.P);
      if (R == MemRel::MustEnc01)
        return MemRel::MustEnc01;
      if (R == MemRel::MustEnc10)
        return MemRel::MustEnc10;
    }

  if (AnyPartial)
    return MemRel::MustPartial;
  return MemRel::Unknown;
}

struct ForestResult {
  std::vector<MemTree> Forest;
  std::vector<Region> Destroyed;
  std::vector<std::string> Assumptions;
};

std::vector<ForestResult> insTree(const MemTree &T0,
                                  const std::vector<MemTree> &Forest,
                                  InsCtx &I, unsigned Budget);

/// Fold-insert every tree of Items into an (initially empty) forest,
/// producing all possible outcomes (used by the aliasing case of
/// Definition 3.7).
std::vector<ForestResult> foldIns(const std::vector<MemTree> &Items,
                                  InsCtx &I, unsigned Budget) {
  std::vector<ForestResult> Acc{ForestResult{}};
  for (const MemTree &T : Items) {
    std::vector<ForestResult> Next;
    for (const ForestResult &F : Acc) {
      for (ForestResult R : insTree(T, F.Forest, I, Budget)) {
        R.Destroyed.insert(R.Destroyed.end(), F.Destroyed.begin(),
                           F.Destroyed.end());
        R.Assumptions.insert(R.Assumptions.end(), F.Assumptions.begin(),
                             F.Assumptions.end());
        Next.push_back(std::move(R));
        if (Next.size() >= Budget)
          break;
      }
      if (Next.size() >= Budget)
        break;
    }
    Acc = std::move(Next);
  }
  return Acc;
}

/// Handle "destroy T1 and keep inserting": removes T1 entirely, recording
/// its regions as destroyed.
std::vector<ForestResult> destroyCase(const MemTree &T0, const MemTree &T1,
                                      const std::vector<MemTree> &Rest,
                                      InsCtx &I, unsigned Budget) {
  std::vector<Region> Dead;
  T1.collectRegions(Dead);
  std::vector<ForestResult> Out;
  for (ForestResult R : insTree(T0, Rest, I, Budget)) {
    R.Destroyed.insert(R.Destroyed.end(), Dead.begin(), Dead.end());
    Out.push_back(std::move(R));
  }
  return Out;
}

std::vector<ForestResult> insTree(const MemTree &T0,
                                  const std::vector<MemTree> &Forest,
                                  InsCtx &I, unsigned Budget) {
  if (Forest.empty())
    return {ForestResult{{T0}, {}, {}}};

  const MemTree &T1 = Forest.front();
  std::vector<MemTree> Rest(Forest.begin() + 1, Forest.end());

  MemRel Rel = relateTrees(T0, T1, I);

  auto aliasCase = [&]() {
    // insAL: merge the top nodes; re-insert all children into a fresh
    // sub-forest.
    std::vector<Region> Merged = T0.Node;
    for (const Region &R : T1.Node)
      if (std::find(Merged.begin(), Merged.end(), R) == Merged.end())
        Merged.push_back(R);
    std::vector<MemTree> Kids = T0.Children;
    Kids.insert(Kids.end(), T1.Children.begin(), T1.Children.end());
    std::vector<ForestResult> Out;
    for (ForestResult F : foldIns(Kids, I, Budget)) {
      MemTree NewTree{Merged, F.Forest};
      std::vector<MemTree> NewForest{NewTree};
      NewForest.insert(NewForest.end(), Rest.begin(), Rest.end());
      Out.push_back(
          ForestResult{std::move(NewForest), F.Destroyed, F.Assumptions});
    }
    return Out;
  };

  auto sepCase = [&]() {
    std::vector<ForestResult> Out;
    for (ForestResult F : insTree(T0, Rest, I, Budget)) {
      F.Forest.insert(F.Forest.begin(), T1);
      Out.push_back(std::move(F));
    }
    return Out;
  };

  switch (Rel) {
  case MemRel::MustAlias:
    return aliasCase();

  case MemRel::MustSep:
    return sepCase();

  case MemRel::MustEnc01: {
    // insENC: T0 goes into T1's sub-forest.
    std::vector<ForestResult> Out;
    for (ForestResult F : insTree(T0, T1.Children, I, Budget)) {
      MemTree NewT1{T1.Node, F.Forest};
      std::vector<MemTree> NewForest{NewT1};
      NewForest.insert(NewForest.end(), Rest.begin(), Rest.end());
      Out.push_back(
          ForestResult{std::move(NewForest), F.Destroyed, F.Assumptions});
    }
    return Out;
  }

  case MemRel::MustEnc10: {
    // insCON: T1 goes into T0's sub-forest; the combined tree is then
    // inserted into the rest of the forest.
    std::vector<ForestResult> Out;
    for (ForestResult F1 : insTree(T1, T0.Children, I, Budget)) {
      MemTree NewT0{T0.Node, F1.Forest};
      for (ForestResult F2 : insTree(NewT0, Rest, I, Budget)) {
        F2.Destroyed.insert(F2.Destroyed.end(), F1.Destroyed.begin(),
                            F1.Destroyed.end());
        F2.Assumptions.insert(F2.Assumptions.end(), F1.Assumptions.begin(),
                              F1.Assumptions.end());
        Out.push_back(std::move(F2));
        if (Out.size() >= Budget)
          return Out;
      }
    }
    return Out;
  }

  case MemRel::MustPartial:
    return destroyCase(T0, T1, Rest, I, Budget);

  case MemRel::Unknown: {
    // Nondeterministic branching (§1): alias and separation are each
    // possible; enumerate both. Partial overlap is excluded only for
    // same-size single-region trees (pointer-typed accesses), recorded as
    // an assumption. Everything else falls back to destroy.
    bool Branchable = I.Policy == UnknownPolicy::BranchAliasOrSep &&
                      T0.Node.size() == 1 && T1.Node.size() == 1 &&
                      T0.Children.empty() &&
                      T0.Node[0].Size == T1.Node[0].Size;
    if (!Branchable || Budget < 2)
      return destroyCase(T0, T1, Rest, I, Budget);

    std::string Assumption;
    if (I.Ctx)
      Assumption = "ASSUME " + T0.Node[0].str(*I.Ctx) + " AND " +
                   T1.Node[0].str(*I.Ctx) +
                   " DO NOT PARTIALLY OVERLAP (alias or separate)";
    std::vector<ForestResult> Out = aliasCase();
    for (ForestResult F : sepCase()) {
      Out.push_back(std::move(F));
      if (Out.size() >= Budget)
        break;
    }
    for (ForestResult &F : Out)
      if (!Assumption.empty())
        F.Assumptions.push_back(Assumption);
    return Out;
  }
  }
  return {};
}

} // namespace

std::vector<InsertResult>
MemModel::insert(const Region &R, const Pred &P, RelationSolver &Solver,
                 UnknownPolicy Policy, const ExprContext &Ctx) const {
  InsCtx I{P, Solver, Policy, &Ctx};
  MemTree Leaf{{R}, {}};

  // Anchoring: if R provably relates (alias / enclosure / overlap) to some
  // region of exactly one top-level tree, the forest's own separation
  // assertions imply R is separate from every other tree — the model is a
  // source of relations, not just the predicate (§3.2). Without this, the
  // Example 3.8 sequence would destroy Figure 2b's rdi tree when the
  // enclosed child is inserted.
  int Anchor = -1;
  bool MultiAnchor = false;
  for (size_t TI = 0; TI < Forest.size(); ++TI) {
    std::vector<Region> All;
    Forest[TI].collectRegions(All);
    for (const Region &R2 : All) {
      MemRel Rel = Solver.relate(R, R2, P);
      if (Rel == MemRel::MustAlias || Rel == MemRel::MustEnc01 ||
          Rel == MemRel::MustEnc10 || Rel == MemRel::MustPartial) {
        if (Anchor >= 0 && Anchor != static_cast<int>(TI))
          MultiAnchor = true;
        Anchor = static_cast<int>(TI);
        break;
      }
    }
  }

  std::vector<ForestResult> Results;
  if (Anchor >= 0 && !MultiAnchor) {
    // Insert into the anchor tree alone; every sibling stays untouched.
    std::vector<MemTree> Single{Forest[static_cast<size_t>(Anchor)]};
    for (ForestResult F :
         insTree(Leaf, Single, I, static_cast<unsigned>(MaxModelsPerInsert))) {
      ForestResult Full;
      Full.Destroyed = std::move(F.Destroyed);
      Full.Assumptions = std::move(F.Assumptions);
      for (size_t TI = 0; TI < Forest.size(); ++TI) {
        if (TI == static_cast<size_t>(Anchor))
          Full.Forest.insert(Full.Forest.end(), F.Forest.begin(),
                             F.Forest.end());
        else
          Full.Forest.push_back(Forest[TI]);
      }
      Results.push_back(std::move(Full));
    }
  } else {
    Results =
        insTree(Leaf, Forest, I, static_cast<unsigned>(MaxModelsPerInsert));
  }

  std::vector<InsertResult> Out;
  for (ForestResult &F : Results) {
    InsertResult IR;
    IR.Model = *this;
    IR.Model.Forest = std::move(F.Forest);
    IR.Destroyed = std::move(F.Destroyed);
    IR.Assumptions = std::move(F.Assumptions);
    Out.push_back(std::move(IR));
    if (Out.size() >= MaxModelsPerInsert)
      break;
  }
  return Out;
}

void MemModel::noteWrite(const Region &R) {
  if (HavocAll)
    return;
  for (const Region &C : Clobbered)
    if (C == R)
      return;
  if (Clobbered.size() >= MaxClobbered) {
    HavocAll = true;
    Clobbered.clear();
    return;
  }
  Clobbered.push_back(R);
}

bool MemModel::provablyUntouched(const Region &R, const Pred &P,
                                 RelationSolver &Solver,
                                 const ExprContext &Ctx) const {
  if (HavocAll)
    return false;
  if (HavocGlobals &&
      smt::classifyAddr(R.Addr, Ctx) != AllocClass::StackFrame)
    return false;
  for (const Region &C : Clobbered)
    if (Solver.relate(R, C, P) != MemRel::MustSep)
      return false;
  return true;
}

// --- join --------------------------------------------------------------------

namespace {

bool nodesShareRegion(const MemTree &A, const MemTree &B) {
  for (const Region &R : A.Node)
    for (const Region &S : B.Node)
      if (R == S)
        return true;
  return false;
}

/// Join two forests per Definition 3.12, with the soundness restriction
/// that one-sided equivalence classes are dropped (a tree present in only
/// one operand asserts relations the other operand does not imply).
std::vector<MemTree> joinForests(const std::vector<MemTree> &FA,
                                 const std::vector<MemTree> &FB) {
  struct Entry {
    const MemTree *T;
    bool FromA;
    int Class;
  };
  std::vector<Entry> Entries;
  for (const MemTree &T : FA)
    Entries.push_back({&T, true, -1});
  for (const MemTree &T : FB)
    Entries.push_back({&T, false, -1});

  // Transitive closure of the shares-a-top-region relation.
  int NumClasses = 0;
  for (size_t I = 0; I < Entries.size(); ++I) {
    if (Entries[I].Class >= 0)
      continue;
    Entries[I].Class = NumClasses++;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t J = 0; J < Entries.size(); ++J) {
        if (Entries[J].Class >= 0)
          continue;
        for (size_t K = 0; K < Entries.size(); ++K)
          if (Entries[K].Class == Entries[I].Class &&
              nodesShareRegion(*Entries[J].T, *Entries[K].T)) {
            Entries[J].Class = Entries[I].Class;
            Changed = true;
            break;
          }
      }
    }
  }

  std::vector<MemTree> Out;
  for (int C = 0; C < NumClasses; ++C) {
    std::vector<const MemTree *> InClass;
    bool HasA = false, HasB = false;
    for (const Entry &E : Entries)
      if (E.Class == C) {
        InClass.push_back(E.T);
        (E.FromA ? HasA : HasB) = true;
      }
    if (!HasA || !HasB)
      continue; // one-sided: drop (weakening)

    // joint(T): intersect the region sets, join the child forests.
    std::vector<Region> Node = InClass[0]->Node;
    for (size_t I = 1; I < InClass.size(); ++I) {
      std::vector<Region> Keep;
      for (const Region &R : Node)
        if (std::find(InClass[I]->Node.begin(), InClass[I]->Node.end(), R) !=
            InClass[I]->Node.end())
          Keep.push_back(R);
      Node = std::move(Keep);
    }
    if (Node.empty())
      continue;

    std::vector<MemTree> Kids;
    bool First = true;
    for (const MemTree *T : InClass) {
      if (First) {
        Kids = T->Children;
        First = false;
      } else {
        Kids = joinForests(Kids, T->Children);
      }
    }
    Out.push_back(MemTree{std::move(Node), std::move(Kids)});
  }
  return Out;
}

} // namespace

MemModel MemModel::join(const MemModel &A, const MemModel &B) {
  MemModel J;
  J.Forest = joinForests(A.Forest, B.Forest);
  // Clobber knowledge is unioned: more clobbered is more abstract.
  J.HavocAll = A.HavocAll || B.HavocAll;
  J.HavocGlobals = A.HavocGlobals || B.HavocGlobals;
  if (!J.HavocAll) {
    J.Clobbered = A.Clobbered;
    for (const Region &R : B.Clobbered) {
      if (std::find(J.Clobbered.begin(), J.Clobbered.end(), R) ==
          J.Clobbered.end())
        J.Clobbered.push_back(R);
      if (J.Clobbered.size() > MaxClobbered) {
        J.HavocAll = true;
        J.Clobbered.clear();
        break;
      }
    }
  }
  return J;
}

// --- inspection -----------------------------------------------------------------

namespace {

struct Placement {
  Region R;
  std::vector<int> Path; // node indices from the root
};

void collectPlacements(const std::vector<MemTree> &Forest,
                       std::vector<int> &Path, std::vector<Placement> &Out) {
  for (size_t I = 0; I < Forest.size(); ++I) {
    Path.push_back(static_cast<int>(I));
    for (const Region &R : Forest[I].Node)
      Out.push_back(Placement{R, Path});
    collectPlacements(Forest[I].Children, Path, Out);
    Path.pop_back();
  }
}

bool isPrefix(const std::vector<int> &A, const std::vector<int> &B) {
  if (A.size() > B.size())
    return false;
  return std::equal(A.begin(), A.end(), B.begin());
}

} // namespace

std::vector<RegionRel> MemModel::relations() const {
  std::vector<Placement> Ps;
  std::vector<int> Path;
  collectPlacements(Forest, Path, Ps);

  std::vector<RegionRel> Out;
  for (size_t I = 0; I < Ps.size(); ++I)
    for (size_t J = I + 1; J < Ps.size(); ++J) {
      const Placement &A = Ps[I], &B = Ps[J];
      MemRel R;
      if (A.Path == B.Path)
        R = MemRel::MustAlias;
      else if (isPrefix(A.Path, B.Path))
        R = MemRel::MustEnc10; // B enclosed in A
      else if (isPrefix(B.Path, A.Path))
        R = MemRel::MustEnc01;
      else
        R = MemRel::MustSep;
      Out.push_back(RegionRel{A.R, B.R, R});
    }
  return Out;
}

namespace {

bool locateRec(const std::vector<MemTree> &Forest, const Region &R,
               std::vector<Region> &Aliases, std::vector<Region> &Ancestors,
               std::vector<Region> &Descendants,
               std::vector<Region> &PathRegions) {
  for (const MemTree &T : Forest) {
    bool Here = std::find(T.Node.begin(), T.Node.end(), R) != T.Node.end();
    if (Here) {
      for (const Region &A : T.Node)
        if (!(A == R))
          Aliases.push_back(A);
      Ancestors = PathRegions;
      for (const MemTree &C : T.Children)
        C.collectRegions(Descendants);
      return true;
    }
    size_t Mark = PathRegions.size();
    PathRegions.insert(PathRegions.end(), T.Node.begin(), T.Node.end());
    if (locateRec(T.Children, R, Aliases, Ancestors, Descendants,
                  PathRegions))
      return true;
    PathRegions.resize(Mark);
  }
  return false;
}

} // namespace

bool MemModel::locate(const Region &R, std::vector<Region> &Aliases,
                      std::vector<Region> &Ancestors,
                      std::vector<Region> &Descendants) const {
  std::vector<Region> Path;
  return locateRec(Forest, R, Aliases, Ancestors, Descendants, Path);
}

std::vector<Region> MemModel::allRegions() const {
  std::vector<Region> Out;
  for (const MemTree &T : Forest)
    T.collectRegions(Out);
  return Out;
}

bool MemModel::leq(const MemModel &A, const MemModel &B) {
  // Every relation asserted by B must be asserted by A.
  std::vector<RegionRel> RA = A.relations();
  auto AssertedByA = [&](const RegionRel &R) {
    for (const RegionRel &S : RA) {
      if (S.R0 == R.R0 && S.R1 == R.R1 && S.Rel == R.Rel)
        return true;
      // Symmetric forms.
      if (S.R0 == R.R1 && S.R1 == R.R0) {
        if (S.Rel == R.Rel &&
            (R.Rel == MemRel::MustAlias || R.Rel == MemRel::MustSep))
          return true;
        if ((S.Rel == MemRel::MustEnc01 && R.Rel == MemRel::MustEnc10) ||
            (S.Rel == MemRel::MustEnc10 && R.Rel == MemRel::MustEnc01))
          return true;
      }
    }
    return false;
  };
  for (const RegionRel &R : B.relations())
    if (!AssertedByA(R))
      return false;

  // B's clobber knowledge must cover A's.
  if (A.HavocAll && !B.HavocAll)
    return false;
  if (A.HavocGlobals && !(B.HavocGlobals || B.HavocAll))
    return false;
  if (!B.HavocAll)
    for (const Region &R : A.Clobbered)
      if (std::find(B.Clobbered.begin(), B.Clobbered.end(), R) ==
          B.Clobbered.end())
        return false;
  return true;
}

std::string MemModel::leqExplain(const expr::ExprContext &Ctx,
                                 const MemModel &A, const MemModel &B) {
  std::vector<RegionRel> RA = A.relations();
  auto AssertedByA = [&](const RegionRel &R) {
    for (const RegionRel &S : RA) {
      if (S.R0 == R.R0 && S.R1 == R.R1 && S.Rel == R.Rel)
        return true;
      if (S.R0 == R.R1 && S.R1 == R.R0) {
        if (S.Rel == R.Rel &&
            (R.Rel == MemRel::MustAlias || R.Rel == MemRel::MustSep))
          return true;
        if ((S.Rel == MemRel::MustEnc01 && R.Rel == MemRel::MustEnc10) ||
            (S.Rel == MemRel::MustEnc10 && R.Rel == MemRel::MustEnc01))
          return true;
      }
    }
    return false;
  };
  for (const RegionRel &R : B.relations())
    if (!AssertedByA(R))
      return "memory relation " + R.R0.str(Ctx) + " " + memRelName(R.Rel) +
             " " + R.R1.str(Ctx) + " required by the target is not asserted "
             "by the state's forest";

  if (A.HavocAll && !B.HavocAll)
    return "state may have clobbered all of memory but the target does not "
           "allow it";
  if (A.HavocGlobals && !(B.HavocGlobals || B.HavocAll))
    return "state may have clobbered global memory but the target does not "
           "allow it";
  if (!B.HavocAll)
    for (const Region &R : A.Clobbered)
      if (std::find(B.Clobbered.begin(), B.Clobbered.end(), R) ==
          B.Clobbered.end())
        return "state may have written region " + R.str(Ctx) +
               " but the target's clobber set does not include it";
  return std::string();
}

// --- digest ------------------------------------------------------------------

namespace {

inline uint64_t mixDigest(uint64_t H, uint64_t V) {
  V *= 0x9e3779b97f4a7c15ULL;
  V ^= V >> 29;
  H ^= V;
  return H * 0xbf58476d1ce4e5b9ULL + 1;
}

uint64_t digestTree(uint64_t H, const MemTree &T) {
  H = mixDigest(H, 0xa11ce); // node marker: separates siblings from nesting
  for (const Region &R : T.Node) {
    H = mixDigest(H, R.Addr->hashValue());
    H = mixDigest(H, R.Size);
  }
  for (const MemTree &C : T.Children)
    H = digestTree(H, C);
  return mixDigest(H, 0xc105e);
}

} // namespace

uint64_t MemModel::digest() const {
  uint64_t H = 0xf04e57;
  for (const MemTree &T : Forest)
    H = digestTree(H, T);
  H = mixDigest(H, (HavocAll ? 2 : 0) | (HavocGlobals ? 1 : 0));
  for (const Region &R : Clobbered) {
    H = mixDigest(H, R.Addr->hashValue());
    H = mixDigest(H, R.Size);
  }
  return H;
}

// --- semantic satisfaction (Definition 3.9) --------------------------------------

bool MemModel::holds(const expr::VarValuation &Vars,
                     const expr::MemOracle &Mem) const {
  std::vector<Placement> Ps;
  std::vector<int> Path;
  collectPlacements(Forest, Path, Ps);

  auto EvalAddr = [&](const Region &R, uint64_t &Out) {
    auto V = expr::evalExpr(R.Addr, Vars, Mem);
    if (!V)
      return false;
    Out = *V;
    return true;
  };

  for (size_t I = 0; I < Ps.size(); ++I)
    for (size_t J = I + 1; J < Ps.size(); ++J) {
      const Placement &A = Ps[I], &B = Ps[J];
      uint64_t EA, EB;
      if (!EvalAddr(A.R, EA) || !EvalAddr(B.R, EB))
        return false;
      __uint128_t EndA = static_cast<__uint128_t>(EA) + A.R.Size;
      __uint128_t EndB = static_cast<__uint128_t>(EB) + B.R.Size;
      if (A.Path == B.Path) {
        if (!(EA == EB && A.R.Size == B.R.Size))
          return false;
      } else if (isPrefix(A.Path, B.Path)) {
        if (!(EB >= EA && EndB <= EndA))
          return false;
      } else if (isPrefix(B.Path, A.Path)) {
        if (!(EA >= EB && EndA <= EndB))
          return false;
      } else {
        if (!(EndA <= EB || EndB <= EA))
          return false;
      }
    }
  return true;
}

std::string MemModel::str(const ExprContext &Ctx) const {
  std::string S;
  std::function<void(const MemTree &, int)> Dump = [&](const MemTree &T,
                                                       int Depth) {
    S += std::string(static_cast<size_t>(Depth) * 2, ' ');
    S += "{";
    for (size_t I = 0; I < T.Node.size(); ++I) {
      if (I)
        S += " == ";
      S += T.Node[I].str(Ctx);
    }
    S += "}\n";
    for (const MemTree &C : T.Children)
      Dump(C, Depth + 1);
  };
  for (const MemTree &T : Forest)
    Dump(T, 0);
  if (HavocAll)
    S += "(havoc: all)\n";
  else if (HavocGlobals)
    S += "(havoc: globals)\n";
  return S;
}

} // namespace hglift::mem
