//===- Witness.h - Incorrectness witnesses for verification failures -*- C++//
//
// Every verification failure ships a replayable counterexample. When Step 2
// (or the lifter itself) reports a VerificationError, the abstraction
// *claims* something the binary does not do — so there should exist a
// concrete initial state that drives the emulator (sem::Machine, the
// ground-truth →B of Definition 3.1) to the reported instruction and
// falsifies the claimed clause there. This subsystem searches for that
// state:
//
//   1. candidate initial register files are derived from the violated
//      predicate itself — interval endpoints and range-clause boundary
//      solutions first (pred::Pred::witnessSeeds), then alloc-class
//      representatives (segment base addresses for pointer-shaped
//      registers), then seeded random fill;
//   2. each candidate is executed concretely with the *same* walk the fuzz
//      oracle uses (fuzz::walkFrom), so a confirmed witness violates the
//      very property (Definition 4.4) the oracle enforces, at the reported
//      site;
//   3. a confirmed witness is re-checked through a symbolic-machinery-free
//      replay spec (the violated clause is concretized at confirmation
//      time), reduced with the delta-debugging reducer, and written as a
//      fuzz_repro_witness_* sidecar pair replayable by `hglift fuzz
//      --replay`.
//
// UnsoundnessAnnotations get *reach* witnesses: a concrete run that
// arrives at the annotated instruction, demonstrating the annotation is
// live. Everything is deterministic — candidate order, machine seeds and
// sidecar bytes are pure functions of (search seed, function, site) — so
// witness output is byte-identical across thread counts and hosts.
//
// Layering: this library links fuzz *and* api, so neither may link it.
// Results travel as the plain-data diag::WitnessSummary (diag/Diag.h),
// which the driver's report writer renders and an hglift::Session stores.
//
//===----------------------------------------------------------------------===//

#ifndef HGLIFT_WITNESS_WITNESS_H
#define HGLIFT_WITNESS_WITNESS_H

#include "api/Hglift.h"
#include "export/HoareChecker.h"
#include "hg/Lifter.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hglift::witness {

struct WitnessOptions {
  /// Directory confirmed-witness sidecars are written to. Empty = search
  /// and report only, write nothing.
  std::string Dir;
  /// Max candidate initial states executed per diagnostic site.
  unsigned Budget = 64;
  /// Search master seed; mixed per-site so every site's candidate stream
  /// is independent of every other's.
  uint64_t Seed = 1;
  /// Step bound of each concrete walk (fuzz::walkFrom).
  int MaxSteps = 300;
};

/// Search one diagnostic site of one lifted function. Clean is the binary
/// result F belongs to (the reducer needs its graphs for instruction
/// atoms); ElfBytes, when available, enables reduction and sidecar
/// writing. Returns the record whatever the verdict — an unconfirmed site
/// always carries a Reason, never silence.
diag::WitnessRecord probeSite(const elf::BinaryImage &Img,
                              const hg::BinaryResult &Clean,
                              const hg::FunctionResult &F, uint64_t SiteAddr,
                              diag::DiagKind Kind, const WitnessOptions &Opts,
                              const std::vector<uint8_t> *ElfBytes = nullptr);

/// Search every eligible diagnostic of a lift-and-check run: lifter
/// VerificationErrors and UnsoundnessAnnotations from R, plus Step-2
/// VerificationErrors from Check (null = lift-only run). Sites are
/// deduplicated by (function, addr, kind) in report order.
diag::WitnessSummary searchBinary(const elf::BinaryImage &Img,
                                  const hg::BinaryResult &R,
                                  const exporter::CheckResult *Check,
                                  const WitnessOptions &Opts,
                                  const std::vector<uint8_t> *ElfBytes =
                                      nullptr);

/// Run searchBinary over a Session (Dir/Budget from Options::WitnessDir /
/// WitnessBudget) and attach the summary (Session::setWitnesses), so the
/// Session's --report-json gains the `witnesses` section. Uses whatever
/// the Session has run: Step-2 diagnostics are searched iff check() ran.
const diag::WitnessSummary &
attachWitnesses(Session &S, const std::vector<uint8_t> *ElfBytes = nullptr);

/// Replay a witness sidecar (kind "hglift-witness"): re-run the recorded
/// concrete state on the sidecar ELF and re-check the concretized claim at
/// the recorded site. 0 = reproduced, 1 = not reproduced, 2 = malformed.
int replayWitness(const std::string &JsonPath, std::ostream &Log);

/// Replay any reproducer sidecar, dispatching on its "kind" field:
/// "hglift-witness" here, "hglift-fuzz-reproducer" to
/// fuzz::replayReproducer. Same exit codes as both.
int replayAny(const std::string &JsonPath, std::ostream &Log);

} // namespace hglift::witness

#endif // HGLIFT_WITNESS_WITNESS_H
