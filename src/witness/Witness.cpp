//===- Witness.cpp - Incorrectness-witness search and replay --------------===//

#include "witness/Witness.h"

#include "diag/Json.h"
#include "elf/ElfReader.h"
#include "fuzz/Campaign.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"
#include "fuzz/Sidecar.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace hglift::witness {

using expr::Expr;
using fuzz::SatFailure;
using fuzz::WalkResult;
using fuzz::WalkViolation;
using sem::Machine;
using x86::NumGPRs;
using x86::Reg;
using x86::regFromNum;
using x86::regName;

namespace {

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

/// Same RelOp truth table the oracle's range clauses use.
bool relHolds(pred::RelOp Op, uint64_t U, uint64_t B) {
  int64_t S = static_cast<int64_t>(U), SB = static_cast<int64_t>(B);
  switch (Op) {
  case pred::RelOp::Eq:
    return U == B;
  case pred::RelOp::Ne:
    return U != B;
  case pred::RelOp::ULt:
    return U < B;
  case pred::RelOp::ULe:
    return U <= B;
  case pred::RelOp::UGe:
    return U >= B;
  case pred::RelOp::UGt:
    return U > B;
  case pred::RelOp::SLt:
    return S < SB;
  case pred::RelOp::SLe:
    return S <= SB;
  case pred::RelOp::SGe:
    return S >= SB;
  case pred::RelOp::SGt:
    return S > SB;
  }
  return true;
}

/// Inverse of pred::relOpName, for replaying recorded range claims.
std::optional<pred::RelOp> relOpFromName(const std::string &N) {
  using RO = pred::RelOp;
  for (RO Op : {RO::Eq, RO::Ne, RO::ULt, RO::ULe, RO::UGe, RO::UGt, RO::SLt,
                RO::SLe, RO::SGe, RO::SGt})
    if (N == pred::relOpName(Op))
      return Op;
  return std::nullopt;
}

/// The concretized claim of a SatFailure. An unevaluated failure (a clause
/// whose operands the initial state cannot ground) degrades to "none": the
/// witness then asserts reachability of the violation, not the value.
diag::WitnessClaim claimFromFail(const SatFailure &F) {
  diag::WitnessClaim C;
  if (!F.Evaluated)
    return C;
  switch (F.K) {
  case SatFailure::Kind::Bottom:
    break;
  case SatFailure::Kind::Reg:
    C.Type = "reg";
    C.RegNum = F.RegNum;
    C.Expect = F.Expect;
    break;
  case SatFailure::Kind::Mem:
    C.Type = "mem";
    C.MemAddr = F.MemAddr;
    C.MemSize = F.MemSize;
    C.Expect = F.Expect;
    break;
  case SatFailure::Kind::Flags:
    C.Type = "flags";
    C.FlagsPinned = F.FlagsPinned;
    C.ExpZF = F.ExpZF;
    C.ExpSF = F.ExpSF;
    C.ExpCF = F.ExpCF;
    C.ExpOF = F.ExpOF;
    break;
  case SatFailure::Kind::Range:
    C.Type = "range";
    C.RangeOp = pred::relOpName(F.Op);
    C.RangeBound = F.Bound;
    C.RangeValue = F.Value;
    break;
  }
  return C;
}

/// Does the concrete machine state violate the recorded claim? "none"
/// claims are violated by construction (the witness is structural —
/// arrival and phase carry the evidence).
bool claimViolated(const diag::WitnessClaim &C, const Machine &M) {
  if (C.Type == "reg")
    return C.RegNum < NumGPRs && M.Regs[C.RegNum] != C.Expect;
  if (C.Type == "mem")
    return M.load(C.MemAddr, C.MemSize) != C.Expect;
  if (C.Type == "flags") {
    for (char F : C.FlagsPinned) {
      if (F == 'z' && M.ZF != C.ExpZF)
        return true;
      if (F == 's' && M.SF != C.ExpSF)
        return true;
      if (F == 'c' && M.CF != C.ExpCF)
        return true;
      if (F == 'o' && M.OF != C.ExpOF)
        return true;
    }
    return false;
  }
  if (C.Type == "range") {
    auto Op = relOpFromName(C.RangeOp);
    return !Op || !relHolds(*Op, C.RangeValue, C.RangeBound);
  }
  return true;
}

/// Everything a symbolic-machinery-free replay needs: entry state, the
/// concrete violation address, and the phase/claim to re-check there.
/// This is exactly what the sidecar JSON serializes.
struct WitnessSpec {
  uint64_t Entry = 0;
  uint64_t SiteAddr = 0; ///< diagnostic site (reporting)
  uint64_t Addr = 0;     ///< concrete violation address (replay)
  std::string Phase = "reach";
  uint64_t NextRip = 0;
  uint64_t MachineSeed = 0;
  int MaxSteps = 300;
  std::array<uint64_t, NumGPRs> Regs{};
  diag::WitnessClaim Claim;
};

/// Run the spec's entry state on Img and check the claim at the recorded
/// address under the recorded phase:
///   "reach"  — arriving at Addr suffices;
///   "at"     — the claim is violated on some arrival at Addr (pre-step);
///   "after"  — stepping from Addr lands at NextRip with the claim
///              violated in the post-state;
///   "return" — stepping from Addr pops the sentinel return address.
/// On success *TraceOut (if given) receives the instruction trace up to
/// the witnessing point, which the reducer uses as its equality oracle.
bool specReproduces(const elf::BinaryImage &Img, const WitnessSpec &Spec,
                    std::vector<uint64_t> *TraceOut = nullptr) {
  Machine M(Img, Spec.MachineSeed);
  M.setupCall(Spec.Entry);
  for (unsigned RI = 0; RI < NumGPRs; ++RI)
    if (regFromNum(RI) != Reg::RSP)
      M.setReg(regFromNum(RI), Spec.Regs[RI]);

  auto witnessed = [&]() {
    if (TraceOut)
      *TraceOut = M.trace();
    return true;
  };

  for (int Step = 0; Step < Spec.MaxSteps; ++Step) {
    bool AtSite = M.Rip == Spec.Addr;
    if (AtSite && Spec.Phase == "reach")
      return witnessed();
    if (AtSite && Spec.Phase == "at" && claimViolated(Spec.Claim, M))
      return witnessed();
    Machine::Status St = M.step();
    if (AtSite && Spec.Phase == "return" && St == Machine::Status::Returned)
      return witnessed();
    if (AtSite && Spec.Phase == "after" && St == Machine::Status::Running &&
        M.Rip == Spec.NextRip && claimViolated(Spec.Claim, M))
      return witnessed();
    if (St != Machine::Status::Running)
      return false;
  }
  return false;
}

/// One candidate initial state with its provenance tier.
struct Candidate {
  const char *Source;
  std::array<uint64_t, NumGPRs> Regs{};
  uint64_t MachineSeed = 0;
};

/// Collect every InitReg variable id mentioned inside a Deref address of E.
void collectDerefVarIds(const Expr *E, std::set<uint32_t> &Out, bool InAddr) {
  if (E->isVar()) {
    if (InAddr)
      Out.insert(E->varId());
    return;
  }
  if (E->isDeref()) {
    collectDerefVarIds(E->derefAddr(), Out, /*InAddr=*/true);
    return;
  }
  for (const Expr *O : E->operands())
    collectDerefVarIds(O, Out, InAddr);
}

/// The vertices whose invariants seed the clause-endpoints tier: the
/// explored vertices at the site plus their direct graph successors (a
/// Step-2 failure at an edge's From instruction typically blames a clause
/// of the *To* vertex, and the concrete violation lands there too).
std::vector<const hg::Vertex *> seedVertices(const hg::FunctionResult &F,
                                             uint64_t SiteAddr) {
  std::vector<const hg::Vertex *> Out = fuzz::verticesAt(F, SiteAddr);
  std::set<uint64_t> SuccRips;
  for (const hg::Edge &E : F.Graph.Edges)
    if (E.From.Rip == SiteAddr && E.To.Rip != SiteAddr)
      SuccRips.insert(E.To.Rip);
  for (uint64_t Rip : SuccRips)
    for (const hg::Vertex *V : fuzz::verticesAt(F, Rip))
      Out.push_back(V);
  if (Out.empty())
    Out = fuzz::verticesAt(F, F.Entry);
  return Out;
}

/// Build the deterministic candidate stream for one site, capped at
/// Budget. Tier order: "base" (one small-value state), "clause-endpoints"
/// (single-register deviations to pred::Pred::witnessSeeds values),
/// "alloc-class" (segment representatives for pointer-shaped registers),
/// "random" (the oracle's own entry-state distribution) to fill.
std::vector<Candidate> makeCandidates(const elf::BinaryImage &Img,
                                      const hg::FunctionResult &F,
                                      uint64_t SiteAddr, uint64_t SiteSeed,
                                      unsigned Budget) {
  std::vector<Candidate> Out;
  if (!Budget)
    return Out;

  // Tier "base": deterministic small values, the state every deviation
  // tier perturbs one register of.
  Candidate Base;
  Base.Source = "base";
  Base.MachineSeed = SiteSeed;
  {
    Rng R(SiteSeed);
    for (unsigned RI = 0; RI < NumGPRs; ++RI)
      if (regFromNum(RI) != Reg::RSP)
        Base.Regs[RI] = R.below(1000);
  }
  Out.push_back(Base);

  std::vector<const hg::Vertex *> Vs = seedVertices(F, SiteAddr);

  // Tier "clause-endpoints": per register, the boundary-straddling values
  // of its init variable under every seed vertex's invariant.
  expr::ExprContext &Ctx = F.ctx();
  for (unsigned RI = 0; RI < NumGPRs && Out.size() < Budget; ++RI) {
    Reg R = regFromNum(RI);
    if (R == Reg::RSP)
      continue;
    const Expr *Var =
        Ctx.mkVar(expr::VarClass::InitReg, regName(R) + "0", 64);
    std::vector<uint64_t> Seeds;
    for (const hg::Vertex *V : Vs) {
      std::vector<uint64_t> S = V->State.P.witnessSeeds(Var);
      Seeds.insert(Seeds.end(), S.begin(), S.end());
    }
    std::sort(Seeds.begin(), Seeds.end());
    Seeds.erase(std::unique(Seeds.begin(), Seeds.end()), Seeds.end());
    for (uint64_t SV : Seeds) {
      if (Out.size() >= Budget)
        break;
      if (SV == Base.Regs[RI])
        continue;
      Candidate C = Base;
      C.Source = "clause-endpoints";
      C.Regs[RI] = SV;
      Out.push_back(C);
    }
  }

  // Tier "alloc-class": registers whose init variable addresses memory in
  // some seed invariant get data-segment representatives (a pointer into
  // each non-executable segment, plus a near-null page).
  {
    std::set<uint32_t> AddrVars;
    for (const hg::Vertex *V : Vs) {
      for (const pred::MemCell &C : V->State.P.cells())
        collectDerefVarIds(C.Addr, AddrVars, /*InAddr=*/true);
      for (unsigned RI = 0; RI < NumGPRs; ++RI)
        if (const Expr *E = V->State.P.reg64(regFromNum(RI)))
          collectDerefVarIds(E, AddrVars, /*InAddr=*/false);
      for (const pred::RangeClause &C : V->State.P.ranges())
        collectDerefVarIds(C.E, AddrVars, /*InAddr=*/false);
    }
    std::vector<uint64_t> Reprs;
    for (const elf::Segment &S : Img.Segments)
      if (!S.Exec)
        Reprs.push_back(S.VAddr + 8);
    Reprs.push_back(0x1000);
    for (unsigned RI = 0; RI < NumGPRs && Out.size() < Budget; ++RI) {
      Reg R = regFromNum(RI);
      if (R == Reg::RSP)
        continue;
      const Expr *Var =
          Ctx.mkVar(expr::VarClass::InitReg, regName(R) + "0", 64);
      if (!AddrVars.count(Var->varId()))
        continue;
      for (uint64_t RV : Reprs) {
        if (Out.size() >= Budget)
          break;
        Candidate C = Base;
        C.Source = "alloc-class";
        C.Regs[RI] = RV;
        Out.push_back(C);
      }
    }
  }

  // Tier "random": the fallback fill, drawn with the oracle's own
  // entry-state distribution (walkOnce order: machine seed first, then
  // per register a 1-in-3 small value, else full random).
  Rng R2(SiteSeed ^ 0x9e3779b97f4a7c15ull);
  while (Out.size() < Budget) {
    Candidate C;
    C.Source = "random";
    C.MachineSeed = R2.next();
    for (unsigned RI = 0; RI < NumGPRs; ++RI) {
      if (regFromNum(RI) == Reg::RSP)
        continue;
      C.Regs[RI] = R2.chance(1, 3) ? R2.below(1000) : R2.next();
    }
    Out.push_back(C);
  }
  return Out;
}

std::string jhex(uint64_t V) { return "\"" + hexStr(V) + "\""; }

std::string basenameOf(const std::string &Path) {
  size_t Pos = Path.find_last_of('/');
  return Pos == std::string::npos ? Path : Path.substr(Pos + 1);
}

/// Render the sidecar JSON half of a witness pair.
std::string renderWitnessJson(const WitnessSpec &Spec,
                              const diag::WitnessRecord &Rec,
                              const std::string &ElfBasename) {
  std::ostringstream J;
  J << "{\n";
  J << "  \"witness_schema_version\": " << diag::WitnessSchemaVersion
    << ",\n";
  J << "  \"kind\": \"hglift-witness\",\n";
  J << "  \"elf\": \"" << diag::jsonEscape(ElfBasename) << "\",\n";
  J << "  \"function\": " << jhex(Spec.Entry) << ",\n";
  J << "  \"site\": " << jhex(Spec.SiteAddr) << ",\n";
  J << "  \"addr\": " << jhex(Spec.Addr) << ",\n";
  J << "  \"diag_kind\": \"" << diag::jsonEscape(Rec.DiagKindName) << "\",\n";
  J << "  \"phase\": \"" << Spec.Phase << "\",\n";
  J << "  \"next_rip\": " << jhex(Spec.NextRip) << ",\n";
  J << "  \"machine_seed\": " << jhex(Spec.MachineSeed) << ",\n";
  J << "  \"max_steps\": " << Spec.MaxSteps << ",\n";
  J << "  \"regs\": [";
  for (unsigned RI = 0; RI < NumGPRs; ++RI)
    J << (RI ? ", " : "") << jhex(Spec.Regs[RI]);
  J << "],\n";
  const diag::WitnessClaim &C = Spec.Claim;
  J << "  \"claim\": {\"type\": \"" << diag::jsonEscape(C.Type)
    << "\", \"reg\": " << C.RegNum << ", \"expect\": " << jhex(C.Expect)
    << ", \"mem_addr\": " << jhex(C.MemAddr)
    << ", \"mem_size\": " << C.MemSize << ", \"range_op\": \""
    << diag::jsonEscape(C.RangeOp)
    << "\", \"range_bound\": " << jhex(C.RangeBound)
    << ", \"range_value\": " << jhex(C.RangeValue) << ", \"flags_pinned\": \""
    << diag::jsonEscape(C.FlagsPinned)
    << "\", \"zf\": " << (C.ExpZF ? "true" : "false")
    << ", \"sf\": " << (C.ExpSF ? "true" : "false")
    << ", \"cf\": " << (C.ExpCF ? "true" : "false")
    << ", \"of\": " << (C.ExpOF ? "true" : "false") << "},\n";
  J << "  \"clause\": \"" << diag::jsonEscape(Rec.Clause) << "\",\n";
  J << "  \"violation\": \"" << diag::jsonEscape(Rec.Violation) << "\",\n";
  J << "  \"trace_len\": " << Rec.TraceLen << ",\n";
  J << "  \"functions\": " << Rec.Functions << ",\n";
  J << "  \"instructions\": " << Rec.Instructions << "\n";
  J << "}\n";
  return J.str();
}

uint64_t jnum64(const diag::JValue &Doc, const std::string &Key) {
  const diag::JValue *V = Doc.get(Key);
  if (!V)
    return 0;
  if (V->isStr())
    return std::strtoull(V->Str.c_str(), nullptr, 0);
  return static_cast<uint64_t>(V->Num);
}

} // namespace

diag::WitnessRecord probeSite(const elf::BinaryImage &Img,
                              const hg::BinaryResult &Clean,
                              const hg::FunctionResult &F, uint64_t SiteAddr,
                              diag::DiagKind Kind, const WitnessOptions &Opts,
                              const std::vector<uint8_t> *ElfBytes) {
  diag::WitnessRecord Rec;
  Rec.Function = F.Entry;
  Rec.Addr = SiteAddr;
  Rec.DiagKindName = diag::diagKindName(Kind);

  if (F.Outcome != hg::LiftOutcome::Lifted || !F.Arena) {
    Rec.Reason = "function-not-lifted";
    return Rec;
  }
  if (SiteAddr == 0) {
    // A function-granular diagnostic (no instruction in scope): there is
    // no site to drive a concrete run to.
    Rec.Reason = "no-instruction-site";
    return Rec;
  }

  bool WantReach = Kind == diag::DiagKind::UnsoundnessAnnotation;
  uint64_t SiteSeed =
      Opts.Seed ^ fnv1a(hexStr(F.Entry) + ":" + hexStr(SiteAddr));
  std::vector<Candidate> Cands =
      makeCandidates(Img, F, SiteAddr, SiteSeed, Opts.Budget);

  WitnessSpec Spec;
  bool Hit = false;
  for (const Candidate &C : Cands) {
    WalkResult WR = fuzz::walkFrom(Img, F, C.Regs, C.MachineSeed,
                                   Opts.MaxSteps);
    ++Rec.Candidates;
    if (WantReach) {
      if (std::find(WR.Trace.begin(), WR.Trace.end(), SiteAddr) ==
          WR.Trace.end())
        continue;
      Spec.Phase = "reach";
      Spec.Addr = SiteAddr;
    } else {
      if (!WR.Violated)
        continue;
      bool Matches =
          WR.V.Addr == SiteAddr ||
          (WR.V.K == WalkViolation::Kind::NoAdmittingVertex &&
           WR.V.PrevRip == SiteAddr && WR.V.PrevRip != 0);
      if (!Matches)
        continue;
      Spec.Addr = WR.V.Addr;
      Spec.NextRip = WR.V.NextRip;
      switch (WR.V.K) {
      case WalkViolation::Kind::NoAdmittingVertex:
        Spec.Phase = "at";
        break;
      case WalkViolation::Kind::SuccessorNotAdmitted:
        Spec.Phase = "after";
        break;
      case WalkViolation::Kind::MissingRetEdge:
        Spec.Phase = "return";
        break;
      }
      if (WR.V.HasFail) {
        Spec.Claim = claimFromFail(WR.V.Fail);
        Rec.Clause = WR.V.Fail.Clause;
      }
      Rec.Violation = WR.V.Message;
    }
    Spec.Entry = F.Entry;
    Spec.SiteAddr = SiteAddr;
    Spec.MachineSeed = C.MachineSeed;
    Spec.MaxSteps = Opts.MaxSteps;
    Spec.Regs = C.Regs;
    Rec.Source = C.Source;
    Rec.MachineSeed = C.MachineSeed;
    Rec.Regs.assign(C.Regs.begin(), C.Regs.end());
    Rec.Phase = Spec.Phase;
    Rec.NextRip = Spec.NextRip;
    Rec.Claim = Spec.Claim;
    Hit = true;
    break;
  }

  if (!Hit) {
    Rec.Reason = WantReach ? "site-not-reached" : "budget-exhausted";
    return Rec;
  }

  // The search confirmed via the symbolic walk; the sidecar replays via
  // the concretized spec alone. Gate the verdict on the spec reproducing
  // in-memory, so a written witness can never be weaker than its verdict.
  std::vector<uint64_t> RefTrace;
  if (!specReproduces(Img, Spec, &RefTrace)) {
    Rec.Reason = "replay-encoding-mismatch";
    return Rec;
  }
  Rec.Verdict = "confirmed";
  Rec.TraceLen = RefTrace.size();

  if (!ElfBytes)
    return Rec;

  // Shrink: NOP-patch every instruction not needed to reproduce the exact
  // witnessed trace. The predicate is Machine-only, so this is cheap.
  auto StillFails = [&](const std::vector<uint8_t> &Bytes) {
    std::optional<elf::BinaryImage> Img2 = elf::readElf(Bytes, "witness");
    if (!Img2)
      return false;
    std::vector<uint64_t> T;
    return specReproduces(*Img2, Spec, &T) && T == RefTrace;
  };
  fuzz::ReduceResult RR = fuzz::reduceBinary(*ElfBytes, Clean, StillFails);
  Rec.Functions = RR.FunctionsLeft;
  Rec.Instructions = RR.InstructionsLeft;

  if (Opts.Dir.empty())
    return Rec;
  {
    std::error_code EC;
    std::filesystem::create_directories(Opts.Dir, EC);
  }
  std::string Tag = std::string("witness_") + hexStr(F.Entry) + "_" +
                    hexStr(SiteAddr) + (WantReach ? "_reach" : "");
  std::string Stem = fuzz::sidecarStem(Opts.Dir, Tag);
  const std::vector<uint8_t> &OutBytes = RR.Reproduced ? RR.Bytes : *ElfBytes;
  if (!fuzz::writeSidecarElf(Stem, OutBytes))
    return Rec;
  std::string ElfPath = fuzz::sidecarElfPath(Stem);
  std::string JsonPath = fuzz::sidecarJsonPath(Stem);
  if (!fuzz::writeSidecarJson(
          Stem, renderWitnessJson(Spec, Rec, basenameOf(ElfPath))))
    return Rec;
  Rec.SidecarElf = basenameOf(ElfPath);
  Rec.SidecarJson = basenameOf(JsonPath);
  std::ostringstream Quiet;
  Rec.Replayed = replayWitness(JsonPath, Quiet) == 0;
  return Rec;
}

diag::WitnessSummary searchBinary(const elf::BinaryImage &Img,
                                  const hg::BinaryResult &R,
                                  const exporter::CheckResult *Check,
                                  const WitnessOptions &Opts,
                                  const std::vector<uint8_t> *ElfBytes) {
  diag::WitnessSummary Sum;
  Sum.Budget = Opts.Budget;

  struct Site {
    uint64_t Fn = 0, Addr = 0;
    diag::DiagKind Kind = diag::DiagKind::VerificationError;
  };
  std::vector<Site> Sites;
  std::set<std::tuple<uint64_t, uint64_t, uint8_t>> Seen;
  auto add = [&](uint64_t Fn, uint64_t Addr, diag::DiagKind K) {
    if (!Seen.insert({Fn, Addr, static_cast<uint8_t>(K)}).second)
      return;
    Sites.push_back(Site{Fn, Addr, K});
  };
  for (const hg::FunctionResult &F : R.Functions)
    for (const diag::Diagnostic &D : F.Diags) {
      if (D.Kind == diag::DiagKind::ProofObligation)
        continue;
      add(D.Prov.FunctionEntry ? D.Prov.FunctionEntry : F.Entry, D.Prov.Addr,
          D.Kind);
    }
  if (Check)
    for (const diag::Diagnostic &D : Check->Diags) {
      if (D.Kind != diag::DiagKind::VerificationError)
        continue;
      add(D.Prov.FunctionEntry, D.Prov.Addr, D.Kind);
    }

  for (const Site &S : Sites) {
    const hg::FunctionResult *F = nullptr;
    for (const hg::FunctionResult &Fn : R.Functions)
      if (Fn.Entry == S.Fn) {
        F = &Fn;
        break;
      }
    diag::WitnessRecord Rec;
    if (!F) {
      Rec.Function = S.Fn;
      Rec.Addr = S.Addr;
      Rec.DiagKindName = diag::diagKindName(S.Kind);
      Rec.Reason = "function-not-lifted";
    } else {
      Rec = probeSite(Img, R, *F, S.Addr, S.Kind, Opts, ElfBytes);
    }
    ++Sum.Searched;
    if (Rec.Verdict == "confirmed")
      ++Sum.Confirmed;
    else
      ++Sum.Unconfirmed;
    Sum.Records.push_back(std::move(Rec));
  }
  return Sum;
}

const diag::WitnessSummary &
attachWitnesses(Session &S, const std::vector<uint8_t> *ElfBytes) {
  WitnessOptions WO;
  WO.Dir = S.options().Witness.Dir;
  WO.Budget = S.options().Witness.Budget;
  S.setWitnesses(
      searchBinary(S.image(), S.lift(), S.checkResult(), WO, ElfBytes));
  return *S.witnesses();
}

int replayWitness(const std::string &JsonPath, std::ostream &Log) {
  std::ifstream In(JsonPath);
  if (!In) {
    Log << "replay: cannot open " << JsonPath << "\n";
    return 2;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  std::optional<diag::JValue> Doc = diag::parseJson(SS.str());
  if (!Doc || !Doc->isObj()) {
    Log << "replay: malformed witness JSON\n";
    return 2;
  }
  if (static_cast<unsigned>(Doc->num("witness_schema_version")) !=
      diag::WitnessSchemaVersion) {
    Log << "replay: unsupported witness_schema_version\n";
    return 2;
  }
  if (Doc->str("kind") != "hglift-witness") {
    Log << "replay: not a witness sidecar\n";
    return 2;
  }

  std::string Elf = Doc->str("elf");
  if (Elf.empty()) {
    Log << "replay: missing elf field\n";
    return 2;
  }
  if (Elf.front() != '/') {
    size_t Pos = JsonPath.find_last_of('/');
    if (Pos != std::string::npos)
      Elf = JsonPath.substr(0, Pos + 1) + Elf;
  }
  std::optional<elf::BinaryImage> Img = elf::readElfFile(Elf);
  if (!Img) {
    Log << "replay: cannot read " << Elf << "\n";
    return 2;
  }

  WitnessSpec Spec;
  Spec.Entry = jnum64(*Doc, "function");
  Spec.SiteAddr = jnum64(*Doc, "site");
  Spec.Addr = jnum64(*Doc, "addr");
  Spec.Phase = Doc->str("phase", "reach");
  Spec.NextRip = jnum64(*Doc, "next_rip");
  Spec.MachineSeed = jnum64(*Doc, "machine_seed");
  Spec.MaxSteps = static_cast<int>(Doc->num("max_steps", 300));
  const diag::JValue *Regs = Doc->get("regs");
  if (!Regs || !Regs->isArr() || Regs->Arr.size() != NumGPRs) {
    Log << "replay: malformed regs array\n";
    return 2;
  }
  for (unsigned RI = 0; RI < NumGPRs; ++RI) {
    const diag::JValue &V = Regs->Arr[RI];
    Spec.Regs[RI] =
        V.isStr() ? std::strtoull(V.Str.c_str(), nullptr, 0)
                  : static_cast<uint64_t>(V.Num);
  }
  if (const diag::JValue *C = Doc->get("claim")) {
    Spec.Claim.Type = C->str("type", "none");
    Spec.Claim.RegNum = static_cast<unsigned>(C->num("reg"));
    Spec.Claim.Expect = jnum64(*C, "expect");
    Spec.Claim.MemAddr = jnum64(*C, "mem_addr");
    Spec.Claim.MemSize = static_cast<uint32_t>(C->num("mem_size"));
    Spec.Claim.RangeOp = C->str("range_op");
    Spec.Claim.RangeBound = jnum64(*C, "range_bound");
    Spec.Claim.RangeValue = jnum64(*C, "range_value");
    Spec.Claim.FlagsPinned = C->str("flags_pinned");
    auto JBool = [&](const char *K) {
      const diag::JValue *B = C->get(K);
      return B && B->B;
    };
    Spec.Claim.ExpZF = JBool("zf");
    Spec.Claim.ExpSF = JBool("sf");
    Spec.Claim.ExpCF = JBool("cf");
    Spec.Claim.ExpOF = JBool("of");
  }

  std::vector<uint64_t> Trace;
  if (!specReproduces(*Img, Spec, &Trace)) {
    Log << "replay: witness did not reproduce (phase " << Spec.Phase
        << " at " << hexStr(Spec.Addr) << ")\n";
    return 1;
  }
  Log << "replay: witness reproduced: phase " << Spec.Phase << " at "
      << hexStr(Spec.Addr) << " after " << Trace.size()
      << " instructions\n";
  return 0;
}

int replayAny(const std::string &JsonPath, std::ostream &Log) {
  std::ifstream In(JsonPath);
  if (!In) {
    Log << "replay: cannot open " << JsonPath << "\n";
    return 2;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  std::optional<diag::JValue> Doc = diag::parseJson(SS.str());
  if (!Doc || !Doc->isObj()) {
    Log << "replay: malformed reproducer JSON\n";
    return 2;
  }
  std::string Kind = Doc->str("kind");
  if (Kind == "hglift-witness")
    return replayWitness(JsonPath, Log);
  if (Kind == "hglift-fuzz-reproducer")
    return fuzz::replayReproducer(JsonPath, Log);
  Log << "replay: unknown reproducer kind \"" << Kind << "\"\n";
  return 2;
}

} // namespace hglift::witness
